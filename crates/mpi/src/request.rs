//! Requests and request allocation.
//!
//! MPI hands applications integer-like request handles; the library maps
//! them back to internal objects. The paper optimizes two aspects
//! reproduced here:
//!
//! * **Thread-private request pools** — "we extended request allocators by
//!   creating thread private pools to minimize locking overheads". The
//!   [`RequestAllocator`] either has one shared (locked) slab or a sharded
//!   set of slabs indexed by thread.
//! * **The two-phase waitall** — phase one converts handles to objects
//!   ("tens of processor cycles per request" of hashing, overlapped with
//!   the completion-counter loads); incomplete requests go to a poll list
//!   for phase two. See [`crate::mpi::Mpi::waitall`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bgq_hw::{Counter, L2TicketMutex};
use parking_lot::Mutex;

use crate::types::Status;

/// What completes a request.
pub(crate) enum CompletionSource {
    /// A byte counter (send-side local completion).
    Counter(Counter),
    /// An explicit flag raised by the matching engine (receive-side).
    Flag,
}

/// Internal request object.
pub struct RequestInner {
    pub(crate) source: CompletionSource,
    pub(crate) flag: AtomicBool,
    /// Receive status, stored by the completer before raising the flag.
    pub(crate) status: Mutex<Option<Status>>,
}

impl RequestInner {
    /// A request completed by a byte counter (send side).
    pub fn with_counter(counter: Counter) -> Arc<RequestInner> {
        Arc::new(RequestInner {
            source: CompletionSource::Counter(counter),
            flag: AtomicBool::new(false),
            status: Mutex::new(None),
        })
    }

    /// A request completed by an explicit flag (receive side).
    pub fn with_flag() -> Arc<RequestInner> {
        Arc::new(RequestInner {
            source: CompletionSource::Flag,
            flag: AtomicBool::new(false),
            status: Mutex::new(None),
        })
    }

    /// Whether the operation has completed.
    pub fn is_complete(&self) -> bool {
        match &self.source {
            CompletionSource::Counter(c) => c.is_complete(),
            CompletionSource::Flag => self.flag.load(Ordering::Acquire),
        }
    }

    /// Completer side: record a status and raise the flag.
    pub(crate) fn complete_with(&self, status: Status) {
        *self.status.lock() = Some(status);
        self.flag.store(true, Ordering::Release);
    }
}

/// An MPI request handle: an opaque integer the library resolves back to
/// its object — keeping the resolve step honest is what makes the
/// two-phase waitall measurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub(crate) u64);

/// One slab of live requests.
#[derive(Default)]
struct Slab {
    live: std::collections::HashMap<u64, Arc<RequestInner>>,
}

/// Allocates request handles and resolves them.
pub struct RequestAllocator {
    /// `None` → one shared slab behind the global-ish lock (classic);
    /// `Some(n)` → `n` shards picked by thread id (thread-optimized
    /// thread-private pools).
    shards: Vec<(L2TicketMutex, Mutex<Slab>)>,
    next: AtomicU64,
}

impl RequestAllocator {
    /// A shared single-pool allocator (classic flavor).
    pub fn shared() -> RequestAllocator {
        Self::with_shards(1)
    }

    /// A sharded allocator (thread-optimized flavor): each thread works in
    /// its own shard, so concurrent allocation rarely contends.
    pub fn sharded(shards: usize) -> RequestAllocator {
        Self::with_shards(shards.max(1))
    }

    fn with_shards(n: usize) -> RequestAllocator {
        RequestAllocator {
            shards: (0..n).map(|_| (L2TicketMutex::new(), Mutex::new(Slab::default()))).collect(),
            next: AtomicU64::new(1),
        }
    }

    fn shard_for_thread(&self) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        // Cheap thread identity: hash the address of a thread-local.
        thread_local! {
            static MARKER: u8 = const { 0 };
        }
        let addr = MARKER.with(|m| m as *const u8 as usize);
        (addr >> 4) % self.shards.len()
    }

    /// Register `inner`, returning its handle. The shard index is encoded
    /// in the handle so resolution does not search.
    pub fn insert(&self, inner: Arc<RequestInner>) -> Request {
        let shard = self.shard_for_thread();
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let handle = (id << 8) | shard as u64;
        let (_lock, slab) = &self.shards[shard];
        slab.lock().live.insert(handle, inner);
        Request(handle)
    }

    /// Resolve a handle ("the hash function that converts request IDs to
    /// request object pointers"). Does not remove.
    pub fn resolve(&self, req: Request) -> Option<Arc<RequestInner>> {
        let shard = (req.0 & 0xFF) as usize;
        let (_lock, slab) = self.shards.get(shard)?;
        slab.lock().live.get(&req.0).cloned()
    }

    /// Remove a completed request's object.
    pub fn release(&self, req: Request) -> Option<Arc<RequestInner>> {
        let shard = (req.0 & 0xFF) as usize;
        let (_lock, slab) = self.shards.get(shard)?;
        slab.lock().live.remove(&req.0)
    }

    /// Live request count (diagnostics/leak tests).
    pub fn live(&self) -> usize {
        self.shards.iter().map(|(_, s)| s.lock().live.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_backed_request_completes_with_counter() {
        let c = Counter::new();
        c.add_expected(8);
        let inner = RequestInner::with_counter(c.clone());
        assert!(!inner.is_complete());
        c.delivered(8);
        assert!(inner.is_complete());
    }

    #[test]
    fn flag_backed_request_completes_with_status() {
        let inner = RequestInner::with_flag();
        assert!(!inner.is_complete());
        inner.complete_with(Status { source: 2, tag: 9, len: 16 });
        assert!(inner.is_complete());
        assert_eq!(inner.status.lock().unwrap().tag, 9);
    }

    #[test]
    fn allocator_insert_resolve_release() {
        let alloc = RequestAllocator::shared();
        let r = alloc.insert(RequestInner::with_flag());
        assert!(alloc.resolve(r).is_some());
        assert_eq!(alloc.live(), 1);
        assert!(alloc.release(r).is_some());
        assert!(alloc.resolve(r).is_none());
        assert_eq!(alloc.live(), 0);
    }

    #[test]
    fn sharded_allocator_spreads_threads() {
        let alloc = Arc::new(RequestAllocator::sharded(4));
        let mut handles = Vec::new();
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let alloc = Arc::clone(&alloc);
                joins.push(s.spawn(move || {
                    (0..100)
                        .map(|_| alloc.insert(RequestInner::with_flag()))
                        .collect::<Vec<_>>()
                }));
            }
            for j in joins {
                handles.extend(j.join().unwrap());
            }
        });
        assert_eq!(alloc.live(), 400);
        // Every handle resolves regardless of which thread asks.
        for h in &handles {
            assert!(alloc.resolve(*h).is_some());
        }
        // Handles are unique.
        let mut sorted: Vec<u64> = handles.iter().map(|h| h.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 400);
    }
}
