//! The per-rank MPI library object: init, point-to-point, progress,
//! waitall.

use std::sync::Arc;

use bgq_hw::{Counter, L2TicketMutex, MemRegion};
use bgq_mu::PayloadSource;
use pami::{
    Client, CommThreadPool, Context, Endpoint, Geometry, LockDiscipline, Machine, Recv, SendArgs,
    TaskEnv, Topology,
};
use parking_lot::Mutex;

use crate::comm::Comm;
use crate::matching::{deliver_unexpected, MatchEngine, PostedRecv, Unexpected, UnexpectedData};
use crate::request::{Request, RequestAllocator, RequestInner};
use crate::types::{LibFlavor, Status, Tag, ThreadLevel, ANY_SOURCE, ANY_TAG};

/// Dispatch id the MPI layer claims on every context.
pub const DISPATCH_MPI_EAGER: u16 = 0x0010;

/// Configuration for [`Mpi::init`].
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Library build (Table 2's classic vs thread-optimized).
    pub flavor: LibFlavor,
    /// Requested thread level.
    pub thread_level: ThreadLevel,
    /// PAMI contexts per rank (parallel communication channels).
    pub contexts: usize,
    /// Commthreads per rank: `None` follows the paper's policy (enabled at
    /// `MPI_THREAD_MULTIPLE`, one per context); `Some(0)` forces off;
    /// `Some(n)` forces `n` (the environment-variable override).
    pub commthreads: Option<usize>,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            flavor: LibFlavor::Classic,
            thread_level: ThreadLevel::Single,
            contexts: 1,
            commthreads: Some(0),
        }
    }
}

impl MpiConfig {
    /// The thread-optimized library at `MPI_THREAD_MULTIPLE` with
    /// commthreads — the paper's message-rate configuration.
    pub fn thread_optimized(contexts: usize) -> MpiConfig {
        MpiConfig {
            flavor: LibFlavor::ThreadOptimized,
            thread_level: ThreadLevel::Multiple,
            contexts,
            commthreads: None,
        }
    }
}

/// State shared between the rank's API object and its dispatch closures.
pub(crate) struct RankShared {
    pub allocator: RequestAllocator,
    pub matcher: MatchEngine,
}

/// One rank's MPI library instance.
pub struct Mpi {
    env: TaskEnv,
    client: Arc<Client>,
    shared: Arc<RankShared>,
    pool: Option<CommThreadPool>,
    flavor: LibFlavor,
    thread_level: ThreadLevel,
    /// The classic build's global lock.
    global_lock: L2TicketMutex,
    world: Comm,
    /// Per-communicator ids this rank has created (split bookkeeping).
    next_user_comm: Mutex<u32>,
}

/// RAII over the classic global lock; a no-op for configurations that elide
/// it.
pub(crate) enum CallGuard<'a> {
    None,
    Global(#[allow(dead_code)] bgq_hw::mutex::L2TicketGuard<'a>),
}

impl Mpi {
    /// `MPI_Init_thread`: build this rank's library instance. Collective —
    /// every task must call it (with an equal `contexts` count) before any
    /// task communicates.
    pub fn init(machine: &Arc<Machine>, task: u32, config: MpiConfig) -> Mpi {
        let client = Client::create(machine, task, "MPI", config.contexts);
        let shared = Arc::new(RankShared {
            allocator: match config.flavor {
                LibFlavor::Classic => RequestAllocator::shared(),
                LibFlavor::ThreadOptimized => RequestAllocator::sharded(8),
            },
            matcher: MatchEngine::with_telemetry(machine.telemetry()),
        });
        for ctx in client.contexts() {
            Self::register_dispatch(ctx, &shared);
            crate::rect_bcast::register_dispatch(ctx);
        }
        // Layer the MPI rectangle broadcast into the machine's collective
        // registry (idempotent across ranks).
        crate::rect_bcast::register_alg(machine);
        // "We use the thread level in the MPI_Init_thread call to determine
        // the level of thread parallelism ... If MPI_THREAD_MULTIPLE is
        // requested, communication threads are automatically enabled."
        let n_commthreads = match config.commthreads {
            Some(n) => n,
            None => {
                if config.thread_level == ThreadLevel::Multiple {
                    config.contexts
                } else {
                    0
                }
            }
        };
        let pool = (n_commthreads > 0).then(|| {
            let discipline = match config.flavor {
                LibFlavor::Classic => LockDiscipline::ContextLock,
                LibFlavor::ThreadOptimized => LockDiscipline::LockFree,
            };
            CommThreadPool::spawn_with(client.contexts().to_vec(), n_commthreads, discipline)
        });
        let env = TaskEnv { machine: Arc::clone(machine), task };
        let geometry = Geometry::create(
            client.context(0),
            0,
            Topology::world(machine.num_tasks() as u32),
        );
        let world = Comm::new(0, geometry, task);
        Mpi {
            env,
            client,
            shared,
            pool,
            flavor: config.flavor,
            thread_level: config.thread_level,
            global_lock: L2TicketMutex::new(),
            world,
            next_user_comm: Mutex::new(1),
        }
    }

    fn register_dispatch(ctx: &Arc<Context>, shared: &Arc<RankShared>) {
        let shared = Arc::clone(shared);
        ctx.set_dispatch(
            DISPATCH_MPI_EAGER,
            Arc::new(move |_ctx: &Context, msg: &pami::IncomingMsg, first: &[u8]| {
                let (src_rank, tag, comm) = unpack_meta(&msg.metadata);
                let len = msg.len as usize;
                // The L2 atomic mutex serializes receive-queue access.
                let _q = shared.matcher.lock.lock();
                if let Some(posted) = shared.matcher.match_posted(src_rank, tag, comm) {
                    drop(_q);
                    assert!(
                        len <= posted.buffer.2,
                        "message of {len} bytes overflows posted receive of {}",
                        posted.buffer.2
                    );
                    let status = Status { source: src_rank, tag, len };
                    if first.len() == len {
                        posted.buffer.0.write(posted.buffer.1, first);
                        posted.request.complete_with(status);
                        return Recv::Done;
                    }
                    let req = posted.request;
                    return Recv::Into {
                        region: posted.buffer.0,
                        offset: posted.buffer.1,
                        on_complete: Box::new(move |_, _result| req.complete_with(status)),
                    };
                }
                // No match: stage as unexpected ("an entry is created in the
                // unexpected queue, and a buffer is allocated").
                let staging = MemRegion::zeroed(len);
                let state = Arc::new(Mutex::new(UnexpectedData::Arriving));
                shared.matcher.add_unexpected(Unexpected {
                    src: src_rank,
                    tag,
                    comm,
                    len,
                    staging: staging.clone(),
                    state: Arc::clone(&state),
                });
                drop(_q);
                let status = Status { source: src_rank, tag, len };
                let stage2 = staging.clone();
                Recv::Into {
                    region: staging,
                    offset: 0,
                    on_complete: Box::new(move |_, _result| {
                        let mut st = state.lock();
                        match std::mem::replace(&mut *st, UnexpectedData::Ready) {
                            UnexpectedData::Arriving => {}
                            UnexpectedData::Claimed { buffer, request } => {
                                buffer.0.copy_from(buffer.1, &stage2, 0, status.len);
                                request.complete_with(status);
                            }
                            UnexpectedData::Ready => unreachable!("completed twice"),
                        }
                    }),
                }
            }),
        );
    }

    /// The machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.env.machine
    }

    /// This rank's global task index.
    pub fn task(&self) -> u32 {
        self.env.task
    }

    /// `MPI_COMM_WORLD`.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// The PAMI client underneath (tests, benchmarks).
    pub fn client(&self) -> &Arc<Client> {
        &self.client
    }

    /// Library flavor in use.
    pub fn flavor(&self) -> LibFlavor {
        self.flavor
    }

    /// Whether commthreads are running.
    pub fn has_commthreads(&self) -> bool {
        self.pool.is_some()
    }

    /// The matching engine (benchmark diagnostics).
    pub fn matcher(&self) -> &MatchEngine {
        &self.shared.matcher
    }

    pub(crate) fn call_guard(&self) -> CallGuard<'_> {
        // The classic library takes its global lock on every call unless
        // MPI_THREAD_SINGLE let it disable locking entirely.
        if self.flavor == LibFlavor::Classic && self.thread_level != ThreadLevel::Single {
            CallGuard::Global(self.global_lock.lock())
        } else {
            CallGuard::None
        }
    }

    fn context_for(&self, peer_rank: usize, comm_id: u32) -> &Arc<Context> {
        // "The source PAMI context is computed by hashing the destination
        // rank and communicator id" (and symmetrically at the destination).
        let n = self.client.num_contexts();
        self.client.context((peer_rank + comm_id as usize) % n)
    }

    fn dest_context_offset(&self, my_rank: usize, comm_id: u32) -> u16 {
        let n = self.client.num_contexts();
        ((my_rank + comm_id as usize) % n) as u16
    }

    // ---- point-to-point ---------------------------------------------------

    /// `MPI_Isend`: nonblocking send of `len` bytes at (`buf`, `offset`) to
    /// `dest` rank in `comm`.
    pub fn isend(
        &self,
        buf: &MemRegion,
        offset: usize,
        len: usize,
        dest: usize,
        tag: Tag,
        comm: &Comm,
    ) -> Request {
        let _g = self.call_guard();
        let my_rank = comm.rank();
        let dest_task = comm.task_of(dest);
        let counter = Counter::new();
        counter.add_expected(len.max(1) as u64);
        let request = RequestInner::with_counter(counter.clone());
        let handle = self.shared.allocator.insert(request);
        let ctx = self.context_for(dest, comm.id());
        let dest_ep = Endpoint {
            task: dest_task,
            context: self.dest_context_offset(my_rank, comm.id()),
        };
        let metadata = pack_meta(my_rank as i32, tag, comm.id());
        let payload = PayloadSource::Region { region: buf.clone(), offset, len };
        if self.pool.is_some() && self.flavor == LibFlavor::ThreadOptimized {
            // Commthread handoff: "we leveraged parallelism from PAMI
            // contexts to hand off the work in MPI Isends ... to a
            // communication thread."
            ctx.post(Box::new(move |ctx| {
                ctx.send(SendArgs {
                    dest: dest_ep,
                    dispatch: DISPATCH_MPI_EAGER,
                    metadata,
                    payload,
                    local_done: Some(counter),
                }).unwrap();
            }));
        } else {
            ctx.send(SendArgs {
                dest: dest_ep,
                dispatch: DISPATCH_MPI_EAGER,
                metadata,
                payload,
                local_done: Some(counter),
            }).unwrap();
        }
        handle
    }

    /// `MPI_Irecv`: nonblocking receive into `len` bytes at (`buf`,
    /// `offset`) from `src` rank (or [`ANY_SOURCE`]) with `tag` (or
    /// [`ANY_TAG`]).
    pub fn irecv(
        &self,
        buf: &MemRegion,
        offset: usize,
        len: usize,
        src: i32,
        tag: Tag,
        comm: &Comm,
    ) -> Request {
        let _g = self.call_guard();
        debug_assert!(src == ANY_SOURCE || (src as usize) < comm.size());
        debug_assert!(tag >= 0 || tag == ANY_TAG);
        let request = RequestInner::with_flag();
        let handle = self.shared.allocator.insert(Arc::clone(&request));
        let _q = self.shared.matcher.lock.lock();
        if let Some(unexpected) = self.shared.matcher.match_unexpected(src, tag, comm.id()) {
            drop(_q);
            deliver_unexpected(unexpected, (buf.clone(), offset, len), request);
        } else {
            self.shared.matcher.add_posted(PostedRecv {
                src,
                tag,
                comm: comm.id(),
                buffer: (buf.clone(), offset, len),
                request,
            });
        }
        handle
    }

    // ---- progress ----------------------------------------------------------

    /// Advance this rank's contexts once (the MPI progress engine).
    pub fn advance(&self) -> usize {
        let mut events = 0;
        for ctx in self.client.contexts() {
            events += if self.flavor == LibFlavor::Classic && self.pool.is_some() {
                // Classic + commthreads: progress requires the context lock.
                let _l = ctx.lock();
                ctx.advance()
            } else {
                ctx.advance()
            };
        }
        events
    }

    /// Non-destructive completion probe (keeps the request live) — what a
    /// poll loop uses between advances.
    pub fn request_complete(&self, req: Request) -> bool {
        self.shared
            .allocator
            .resolve(req)
            .map(|r| r.is_complete())
            .unwrap_or(true)
    }

    /// `MPI_Test`.
    pub fn test(&self, req: Request) -> Option<Status> {
        let _g = self.call_guard();
        let inner = self.shared.allocator.resolve(req).expect("unknown request");
        if inner.is_complete() {
            let status = inner.status.lock().unwrap_or_else(Status::none);
            self.shared.allocator.release(req);
            Some(status)
        } else {
            None
        }
    }

    /// `MPI_Wait`.
    pub fn wait(&self, req: Request) -> Status {
        let inner = {
            let _g = self.call_guard();
            self.shared.allocator.resolve(req).expect("unknown request")
        };
        while !inner.is_complete() {
            if self.advance() == 0 {
                std::thread::yield_now();
            }
        }
        let status = inner.status.lock().unwrap_or_else(Status::none);
        let _g = self.call_guard();
        self.shared.allocator.release(req);
        status
    }

    /// `MPI_Waitall` — the two-phase algorithm of section IV.A: phase one
    /// converts every handle to its object (the hash lookups, whose cost
    /// overlaps the completion-flag cache misses) and collects the
    /// incomplete ones; phase two polls only those while driving progress.
    pub fn waitall(&self, reqs: &[Request]) -> Vec<Status> {
        // Phase 1: resolve + first completion check.
        let resolved: Vec<Arc<RequestInner>> = {
            let _g = self.call_guard();
            reqs.iter()
                .map(|r| self.shared.allocator.resolve(*r).expect("unknown request"))
                .collect()
        };
        let mut pending: Vec<usize> =
            (0..resolved.len()).filter(|&i| !resolved[i].is_complete()).collect();
        // Phase 2: poll the pending list.
        while !pending.is_empty() {
            if self.advance() == 0 {
                std::thread::yield_now();
            }
            pending.retain(|&i| !resolved[i].is_complete());
        }
        let statuses = resolved
            .iter()
            .map(|r| r.status.lock().unwrap_or_else(Status::none))
            .collect();
        let _g = self.call_guard();
        for r in reqs {
            self.shared.allocator.release(*r);
        }
        statuses
    }

    /// Blocking `MPI_Send`.
    pub fn send(&self, buf: &MemRegion, offset: usize, len: usize, dest: usize, tag: Tag, comm: &Comm) {
        let r = self.isend(buf, offset, len, dest, tag, comm);
        self.wait(r);
    }

    /// Blocking `MPI_Recv`.
    pub fn recv(
        &self,
        buf: &MemRegion,
        offset: usize,
        len: usize,
        src: i32,
        tag: Tag,
        comm: &Comm,
    ) -> Status {
        let r = self.irecv(buf, offset, len, src, tag, comm);
        self.wait(r)
    }

    // ---- communicator management -------------------------------------------

    /// `MPI_Comm_split`: collective over `comm`; returns this rank's new
    /// communicator (or `None` for color < 0, the `MPI_UNDEFINED` case).
    pub fn comm_split(&self, comm: &Comm, color: i32, key: i32) -> Option<Comm> {
        let seq = comm.geometry().next_seq(self.task());
        // Exchange (rank, color, key) through machine shared state — the
        // stand-in for the allgather MPICH does here.
        let board: Arc<Mutex<std::collections::HashMap<usize, (i32, i32)>>> = self
            .machine()
            .shared_state(&format!("mpi.split.{}.{}", comm.id(), seq), Default::default);
        board.lock().insert(comm.rank(), (color, key));
        // Wait until every member posted.
        let n = comm.size();
        while board.lock().len() < n {
            if self.advance() == 0 {
                std::thread::yield_now();
            }
        }
        let snapshot = board.lock().clone();
        if color < 0 {
            comm.barrier_ctx(self.client.context(0));
            return None;
        }
        // Members of my color, ordered by (key, old rank).
        let mut members: Vec<(i32, usize)> = snapshot
            .iter()
            .filter(|(_, (c, _))| *c == color)
            .map(|(rank, (_, k))| (*k, *rank))
            .collect();
        members.sort_unstable();
        let tasks: Vec<u32> = members.iter().map(|(_, r)| comm.task_of(*r)).collect();
        // Distinct colors in ascending order give a deterministic id.
        let mut colors: Vec<i32> =
            snapshot.values().map(|(c, _)| *c).filter(|c| *c >= 0).collect();
        colors.sort_unstable();
        colors.dedup();
        let color_idx = colors.iter().position(|c| *c == color).unwrap() as u32;
        let new_id = ((comm.id() + 1) << 20) | ((seq as u32 & 0xFFF) << 8) | color_idx;
        let topology = contiguous_or_list(&tasks);
        let geometry = Geometry::create(self.client.context(0), new_id, topology);
        let new_comm = Comm::new(new_id, geometry, self.task());
        comm.barrier_ctx(self.client.context(0));
        {
            let mut next = self.next_user_comm.lock();
            *next = (*next).max(new_id + 1);
        }
        Some(new_comm)
    }

    /// `MPI_Comm_dup`.
    pub fn comm_dup(&self, comm: &Comm) -> Comm {
        self.comm_split(comm, 0, comm.rank() as i32).expect("color 0 is defined")
    }

    /// A context for collective progress (context 0).
    pub(crate) fn coll_context(&self) -> &Arc<Context> {
        self.client.context(0)
    }
}

impl Drop for Mpi {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// If `tasks` is a contiguous ascending run use O(1) range storage,
/// otherwise an explicit list.
fn contiguous_or_list(tasks: &[u32]) -> Topology {
    if !tasks.is_empty() && tasks.windows(2).all(|w| w[1] == w[0] + 1) {
        Topology::Range { first: tasks[0], count: tasks.len() as u32, stride: 1 }
    } else {
        Topology::List(tasks.to_vec().into())
    }
}

pub(crate) fn pack_meta(src_rank: i32, tag: Tag, comm: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&src_rank.to_le_bytes());
    v.extend_from_slice(&tag.to_le_bytes());
    v.extend_from_slice(&comm.to_le_bytes());
    v
}

pub(crate) fn unpack_meta(metadata: &bytes::Bytes) -> (i32, Tag, u32) {
    assert!(metadata.len() >= 12, "malformed MPI envelope");
    (
        i32::from_le_bytes(metadata[..4].try_into().unwrap()),
        i32::from_le_bytes(metadata[4..8].try_into().unwrap()),
        u32::from_le_bytes(metadata[8..12].try_into().unwrap()),
    )
}

impl Mpi {
    /// `MPI_Sendrecv`: simultaneous send and receive (deadlock-free for
    /// exchange patterns like halo swaps).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        send: (&MemRegion, usize, usize),
        dest: usize,
        send_tag: Tag,
        recv: (&MemRegion, usize, usize),
        src: i32,
        recv_tag: Tag,
        comm: &Comm,
    ) -> Status {
        let r = self.irecv(recv.0, recv.1, recv.2, src, recv_tag, comm);
        let s = self.isend(send.0, send.1, send.2, dest, send_tag, comm);
        let status = self.wait(r);
        self.wait(s);
        status
    }

    /// `MPI_Iprobe`: nonblocking check whether a matching message has
    /// arrived unexpected. Returns its envelope without receiving it.
    pub fn iprobe(&self, src: i32, tag: Tag, comm: &Comm) -> Option<Status> {
        let _g = self.call_guard();
        self.advance();
        let _q = self.shared.matcher.lock.lock();
        self.shared.matcher.peek_unexpected(src, tag, comm.id())
    }

    /// `MPI_Probe`: block (advancing) until a matching message is
    /// available.
    pub fn probe(&self, src: i32, tag: Tag, comm: &Comm) -> Status {
        loop {
            if let Some(st) = self.iprobe(src, tag, comm) {
                return st;
            }
            if self.advance() == 0 {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        let m = bytes::Bytes::from(pack_meta(-1, ANY_TAG, 77));
        assert_eq!(unpack_meta(&m), (ANY_SOURCE, ANY_TAG, 77));
        let m = bytes::Bytes::from(pack_meta(12, 34, 0));
        assert_eq!(unpack_meta(&m), (12, 34, 0));
    }

    #[test]
    fn contiguous_detection() {
        assert!(matches!(contiguous_or_list(&[3, 4, 5]), Topology::Range { first: 3, count: 3, stride: 1 }));
        assert!(matches!(contiguous_or_list(&[3, 5, 6]), Topology::List(_)));
    }
}
