//! The multicolor rectangle broadcast (paper Figure 10).
//!
//! "To improve broadcast performance, by up to a factor of nearly 10, we
//! also implemented a 10-color rectangle broadcast, where the root sends
//! data to all the remaining nodes in the 5D torus via 10 edge disjoint
//! spanning trees." The buffer is striped into ten slices; slice *c*
//! travels down spanning tree *c* (built by [`bgq_torus::trees`] with a
//! rotated dimension order and the *c*-th directed link leading), with
//! every node-leader forwarding each slice to its children in that tree as
//! soon as the slice has landed in its own receive buffer. Intra-node, the
//! usual shared-address scheme applies: peers copy from the leader's
//! buffer through the global virtual address space.

use std::collections::HashMap;
use std::sync::Arc;

use bgq_hw::{Counter, MemRegion};
use bgq_torus::{Coords, SpanningTree, TorusShape};
use pami::coll::{AlgEntry, AlgExec, CollKind};
use pami::geometry::BoardEntry;
use pami::{Context, Endpoint, Geometry, Machine, PayloadSource, Recv, SendArgs};
use parking_lot::Mutex;

/// Dispatch id used by rectangle-broadcast tree traffic.
pub const DISPATCH_RECT: u16 = 0x0020;

/// Registry name of the rectangle broadcast — a *layered* algorithm the MPI
/// layer adds to the PAMI [`pami::coll::CollRegistry`].
pub const ALG_RECT_BCAST: &str = "rect-bcast";

/// Register the rectangle broadcast in the machine's collective registry
/// (done by [`crate::mpi::Mpi::init`]; idempotent). Cost 200 keeps it out
/// of auto-selection — it runs when forced by name ([`Mpi::bcast_rect`]) —
/// and its availability predicate (a multi-node rectangular geometry) is
/// what [`Mpi::bcast_rect`] consults to fall back to the generic path.
///
/// [`Mpi::bcast_rect`]: crate::mpi::Mpi
pub(crate) fn register_alg(machine: &Arc<Machine>) {
    machine.coll_registry().register(AlgEntry::new(
        ALG_RECT_BCAST,
        CollKind::Broadcast,
        200,
        Arc::new(|g: &Geometry| g.nodes().len() > 1 && g.node_rect().is_some()),
        AlgExec::Broadcast(Arc::new(rect_broadcast_body)),
    ));
}

/// Number of colors (directed links out of a node).
const COLORS: usize = 10;

const SLOT_RECT_ROOT: u32 = 0x5000_0000;
const SLOT_RECT_RESULT: u32 = 0x5000_0001;

/// Everything a leader needs to deposit and forward slices.
struct ReadyCtx {
    region: MemRegion,
    base: usize,
    trees: Arc<Vec<SpanningTree>>,
    geometry: Arc<Geometry>,
    my_coords: Coords,
    seq: u64,
    root_node: u32,
    /// Local-completion counter over all forwards from this node.
    forwards: Counter,
}

#[derive(Default)]
struct RectOpState {
    ready: Option<Arc<ReadyCtx>>,
    /// Slices that arrived before the local call published the buffer.
    staged: Vec<(u8, u64, u64, MemRegion)>,
    /// Bytes landed in the destination buffer.
    received: u64,
}

#[derive(Default)]
struct RectOp {
    state: Mutex<RectOpState>,
}

#[derive(Default)]
struct RectStore {
    /// In-flight ops keyed by (node, geometry, sequence) — the store is
    /// machine-wide shared state standing in for per-node memory, so the
    /// node index must be part of the key.
    ops: Mutex<HashMap<(u32, u32, u64), Arc<RectOp>>>,
}

fn store_of(ctx: &Context) -> Arc<RectStore> {
    ctx.machine().shared_state("mpi.rect.store", RectStore::default)
}

fn op_of(store: &RectStore, node: u32, geom: u32, seq: u64) -> Arc<RectOp> {
    Arc::clone(store.ops.lock().entry((node, geom, seq)).or_default())
}

/// Byte range of slice `color` when striping `len` bytes over ten trees.
fn slice_bounds(len: u64, color: usize) -> (u64, u64) {
    let lo = len * color as u64 / COLORS as u64;
    let hi = len * (color as u64 + 1) / COLORS as u64;
    (lo, hi)
}

fn pack_rect_meta(geom: u32, seq: u64, root_node: u32, color: u8, off: u64, slen: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(33);
    v.extend_from_slice(&geom.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(&root_node.to_le_bytes());
    v.push(color);
    v.extend_from_slice(&off.to_le_bytes());
    v.extend_from_slice(&slen.to_le_bytes());
    v
}

fn unpack_rect_meta(m: &bytes::Bytes) -> (u32, u64, u32, u8, u64, u64) {
    assert!(m.len() >= 33, "malformed rect-broadcast metadata");
    (
        u32::from_le_bytes(m[..4].try_into().unwrap()),
        u64::from_le_bytes(m[4..12].try_into().unwrap()),
        u32::from_le_bytes(m[12..16].try_into().unwrap()),
        m[16],
        u64::from_le_bytes(m[17..25].try_into().unwrap()),
        u64::from_le_bytes(m[25..33].try_into().unwrap()),
    )
}

/// Register the rectangle-broadcast dispatch on a context (done by
/// [`crate::mpi::Mpi::init`]).
pub(crate) fn register_dispatch(ctx: &Arc<Context>) {
    ctx.set_dispatch(
        DISPATCH_RECT,
        Arc::new(|ctx: &Context, msg: &pami::IncomingMsg, _first: &[u8]| {
            let (geom, seq, _root_node, color, off, slen) = unpack_rect_meta(&msg.metadata);
            debug_assert_eq!(msg.len, slen);
            let store = store_of(ctx);
            let op = op_of(&store, ctx.node(), geom, seq);
            let ready = op.state.lock().ready.clone();
            match ready {
                Some(r) => {
                    // Deposit straight into the leader's buffer; forward on
                    // completion.
                    let op2 = Arc::clone(&op);
                    Recv::Into {
                        region: r.region.clone(),
                        offset: r.base + off as usize,
                        on_complete: Box::new(move |ctx2, _result| {
                            finish_slice(ctx2, &op2, &r, color, off, slen);
                        }),
                    }
                }
                None => {
                    // The local collective call has not happened yet: stage.
                    let staging = MemRegion::zeroed(slen as usize);
                    let stage2 = staging.clone();
                    let op2 = Arc::clone(&op);
                    Recv::Into {
                        region: staging,
                        offset: 0,
                        on_complete: Box::new(move |ctx2, _result| {
                            let ready_now = {
                                let mut st = op2.state.lock();
                                match st.ready.clone() {
                                    Some(r) => Some(r),
                                    None => {
                                        st.staged.push((color, off, slen, stage2.clone()));
                                        None
                                    }
                                }
                            };
                            if let Some(r) = ready_now {
                                r.region.copy_from(
                                    r.base + off as usize,
                                    &stage2,
                                    0,
                                    slen as usize,
                                );
                                finish_slice(ctx2, &op2, &r, color, off, slen);
                            }
                        }),
                    }
                }
            }
        }),
    );
}

/// A slice has fully landed in this leader's buffer: count it and forward
/// it to this node's children in the slice's tree.
fn finish_slice(ctx: &Context, op: &Arc<RectOp>, r: &Arc<ReadyCtx>, color: u8, off: u64, slen: u64) {
    op.state.lock().received += slen;
    forward_slice(ctx, r, color, off, slen);
}

fn forward_slice(ctx: &Context, r: &Arc<ReadyCtx>, color: u8, off: u64, slen: u64) {
    if slen == 0 {
        return;
    }
    let shape = ctx.machine().shape();
    let tree = &r.trees[color as usize];
    for child in tree.children_of(r.my_coords) {
        let child_node = shape.node_index(child) as u32;
        let leader = r.geometry.group(child_node).leader;
        r.forwards.add_expected(slen);
        ctx.send(SendArgs {
            dest: Endpoint::of_task(leader),
            dispatch: DISPATCH_RECT,
            metadata: pack_rect_meta(r.geometry.id(), r.seq, r.root_node, color, off, slen),
            payload: PayloadSource::Region {
                region: r.region.clone(),
                offset: r.base + off as usize,
                len: slen as usize,
            },
            local_done: Some(r.forwards.clone()),
        }).unwrap();
    }
}

fn local_barrier(geom: &Geometry, ctx: &Context) {
    let group = geom.group(ctx.node());
    if group.tasks.len() == 1 {
        return;
    }
    let generation = group.barrier.arrive();
    ctx.advance_until(|| group.barrier.is_released(generation));
}

fn trees_for(
    ctx: &Context,
    geom: &Arc<Geometry>,
    shape: TorusShape,
    root_node: u32,
) -> Arc<Vec<SpanningTree>> {
    let key = format!("mpi.rect.trees.{}.{}", geom.id(), root_node);
    let rect = geom.node_rect().expect("rectangle checked by caller");
    let root = shape.coords_of(root_node as usize);
    ctx.machine().shared_state(&key, || {
        (0..COLORS as u8)
            .map(|c| SpanningTree::build(shape, rect, root, bgq_torus::trees::TreeKind::Colored(c)))
            .collect::<Vec<_>>()
    })
}

/// The 10-color rectangle broadcast. Collective over `geom`; consults the
/// registry entry's availability and falls back to the generic broadcast
/// when the geometry spans a single node or is not a node rectangle.
pub fn rect_broadcast(
    geom: &Arc<Geometry>,
    ctx: &Arc<Context>,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    let entry = geom
        .machine()
        .coll_registry()
        .forced(CollKind::Broadcast, ALG_RECT_BCAST);
    if entry.available(geom) {
        pami::coll::broadcast_named(geom, ctx, ALG_RECT_BCAST, root_rank, region, offset, len);
    } else {
        // No torus to stripe over (or irregular nodes): generic path.
        pami::coll::broadcast(geom, ctx, root_rank, region, offset, len);
    }
}

/// The registered broadcast body: stripe over ten spanning trees. Runs with
/// the sequence number already consumed and trivial cases already handled
/// by the dispatch wrapper.
fn rect_broadcast_body(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    let geom = Geometry::lookup(ctx.machine(), geom.id())
        .expect("rect broadcast runs on a registered geometry");
    let geom = &geom;
    let machine = ctx.machine();
    let shape = machine.shape();
    let node = ctx.node();
    let group = geom.group(node);
    let me = ctx.task();
    let root_task = geom.topology().task_at(root_rank);
    let root_node = machine.task_node(root_task);
    let is_leader = me == group.leader;

    // Root shares its buffer with its node leader if it is not the leader.
    if me == root_task && !is_leader {
        group.board.post(
            seq,
            SLOT_RECT_ROOT,
            BoardEntry::Region { region: region.clone(), offset, len },
        );
    }
    local_barrier(geom, ctx);

    if is_leader {
        let store = store_of(ctx);
        let op = op_of(&store, node, geom.id(), seq);
        let trees = trees_for(ctx, geom, shape, root_node);
        let ready = Arc::new(ReadyCtx {
            region: region.clone(),
            base: offset,
            trees,
            geometry: Arc::clone(geom),
            my_coords: shape.coords_of(node as usize),
            seq,
            root_node,
            forwards: Counter::new(),
        });
        let staged = {
            let mut st = op.state.lock();
            st.ready = Some(Arc::clone(&ready));
            if node == root_node {
                // The data is (or will be, via the board) local.
                if me != root_task {
                    let entry = group.board.get(seq, SLOT_RECT_ROOT).expect("root posted");
                    let (r, o, l) = match entry {
                        BoardEntry::Region { region, offset, len } => (region, offset, len),
                        _ => unreachable!(),
                    };
                    assert_eq!(l, len);
                    region.copy_from(offset, &r, o, len);
                }
                st.received = len as u64;
            }
            std::mem::take(&mut st.staged)
        };
        if node == root_node {
            // Root leader seeds every tree.
            for color in 0..COLORS {
                let (lo, hi) = slice_bounds(len as u64, color);
                forward_slice(ctx, &ready, color as u8, lo, hi - lo);
            }
        }
        // Slices that raced in before we published.
        for (color, off, slen, staging) in staged {
            region.copy_from(offset + off as usize, &staging, 0, slen as usize);
            finish_slice(ctx, &op, &ready, color, off, slen);
        }
        // Drive until all bytes landed and all forwards have left.
        ctx.advance_until(|| {
            op.state.lock().received >= len as u64 && ready.forwards.is_complete()
        });
        group.board.post(
            seq,
            SLOT_RECT_RESULT,
            BoardEntry::Region { region: region.clone(), offset, len },
        );
        store.ops.lock().remove(&(node, geom.id(), seq));
    }
    local_barrier(geom, ctx);
    if !is_leader && me != root_task {
        let entry = loop {
            if let Some(e) = group.board.get(seq, SLOT_RECT_RESULT) {
                break e;
            }
            if ctx.advance() == 0 {
                std::thread::yield_now();
            }
        };
        let (r, o, _) = match entry {
            BoardEntry::Region { region, offset, len } => (region, offset, len),
            _ => unreachable!(),
        };
        region.copy_from(offset, &r, o, len);
    }
    local_barrier(geom, ctx);
    if is_leader {
        group.board.clear_seq(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_bounds_cover_exactly() {
        for len in [0u64, 1, 9, 10, 11, 4096, 1 << 20] {
            let mut total = 0;
            let mut prev_hi = 0;
            for c in 0..COLORS {
                let (lo, hi) = slice_bounds(len, c);
                assert_eq!(lo, prev_hi, "slices contiguous");
                assert!(hi >= lo);
                total += hi - lo;
                prev_hi = hi;
            }
            assert_eq!(total, len, "slices cover the buffer for len {len}");
        }
    }

    #[test]
    fn rect_meta_round_trips() {
        let m = bytes::Bytes::from(pack_rect_meta(7, 99, 3, 9, 1 << 40, 12345));
        assert_eq!(unpack_rect_meta(&m), (7, 99, 3, 9, 1 << 40, 12345));
    }
}
