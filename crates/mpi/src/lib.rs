//! An MPI-flavoured messaging layer over PAMI — the reproduction of the
//! paper's "pamid" MPICH2 device (section IV).
//!
//! This is not a full MPI implementation; it is the part of MPI the paper
//! measures, built the way the paper builds it:
//!
//! * **Two library flavors** ([`LibFlavor`]): the *classic* library takes a
//!   global lock around every call; the *thread-optimized* library uses
//!   thread-private request pools, lock-free handoff to PAMI contexts, and
//!   an L2-atomic mutex only around the shared receive queue. Table 2's
//!   four-way comparison falls out of these two flavors crossed with the
//!   thread level and commthreads on/off.
//! * **Matching** ([`matching`]): the serial MPICH-style posted/unexpected
//!   queue pair under one low-overhead L2 ticket mutex — including
//!   `ANY_SOURCE`/`ANY_TAG` wildcards, whose serializing effect Figure 5
//!   measures.
//! * **Context hashing**: the source context is picked by hashing
//!   (destination rank, communicator), the destination context by hashing
//!   (source rank, communicator), so a (sender, receiver, communicator)
//!   triple always uses one ordered channel while different destinations
//!   spread across contexts.
//! * **Two-phase waitall** ([`mpi::Mpi::waitall`]): request handles are
//!   resolved (the "hash" phase, overlapped with the completion-counter
//!   cache misses) and only the incomplete ones are polled.
//! * **Collectives** ([`comm::Comm`]): GI + L2 barrier, shared-address
//!   broadcast and allreduce over classroutes, the 10-color rectangle
//!   broadcast, and the MPIX optimize/deoptimize extensions.

//! # Example
//!
//! ```
//! use pami::Machine;
//! use pami_mpi::{MemRegion, Mpi, MpiConfig};
//!
//! let machine = Machine::with_nodes(2).build();
//! machine.run(|env| {
//!     let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
//!     env.machine.task_barrier();
//!     let world = mpi.world().clone();
//!     let buf = MemRegion::zeroed(8);
//!     if world.rank() == 0 {
//!         buf.write_i64(0, 42);
//!         mpi.send(&buf, 0, 8, 1, 0, &world);
//!     } else {
//!         let status = mpi.recv(&buf, 0, 8, 0, 0, &world);
//!         assert_eq!(status.len, 8);
//!         assert_eq!(buf.read_i64(0), 42);
//!     }
//!     mpi.barrier(&world);
//! });
//! ```

pub mod comm;
pub mod matching;
pub mod mpi;
pub mod rect_bcast;
pub mod request;
pub mod types;

pub use comm::Comm;
pub use mpi::{Mpi, MpiConfig};
pub use request::Request;
pub use types::{LibFlavor, Status, Tag, ThreadLevel, ANY_SOURCE, ANY_TAG};

// Buffer/selector types the API traffics in.
pub use bgq_hw::MemRegion;
pub use pami::{CollOp, DataType};
// One-sided RMA surface for MPI-3 RMA-style layering: the typed argument
// structs ride through unchanged so an MPI window layer can hand them to
// the PAMI context underneath.
pub use pami::{GetArgs, MemSlot, PutArgs, RmwArgs, RmwOp, WindowRef};
