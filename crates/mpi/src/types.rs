//! Core MPI-layer types: thread levels, library flavors, tags, statuses.

/// MPI message tag.
pub type Tag = i32;

/// Wildcard source rank (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -2;

/// The requested thread support level (`MPI_Init_thread`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThreadLevel {
    /// One thread calls MPI: locks can be elided.
    Single,
    /// Multithreaded process, only the main thread calls MPI.
    Funneled,
    /// Any thread calls MPI, one at a time.
    Serialized,
    /// Any thread calls MPI concurrently — the level that stresses the
    /// library's locking discipline (and, in the paper, auto-enables
    /// communication threads).
    Multiple,
}

/// Which MPI library build to use — the paper's classic vs
/// thread-optimized comparison (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibFlavor {
    /// "The classic MPI library has a global lock for all library calls."
    /// Cheapest at `ThreadLevel::Single` (the lock is elided), worst with
    /// commthreads (it must take the PAMI context locks to progress).
    Classic,
    /// "The thread-optimized library uses thread pools and lock-free
    /// techniques and acquires a mutex only while accessing a shared
    /// resource such as the receive queue."
    ThreadOptimized,
}

/// Completion information of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the sender within the communicator.
    pub source: i32,
    /// Tag the message carried.
    pub tag: Tag,
    /// Bytes received.
    pub len: usize,
}

impl Status {
    /// An empty status (send requests).
    pub fn none() -> Status {
        Status { source: ANY_SOURCE, tag: ANY_TAG, len: 0 }
    }
}

/// Does a posted (source, tag) selector match an incoming (source, tag)?
pub fn matches(want_src: i32, want_tag: Tag, src: i32, tag: Tag) -> bool {
    (want_src == ANY_SOURCE || want_src == src) && (want_tag == ANY_TAG || want_tag == tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matching_rules() {
        assert!(matches(ANY_SOURCE, ANY_TAG, 3, 7));
        assert!(matches(3, ANY_TAG, 3, 7));
        assert!(matches(ANY_SOURCE, 7, 3, 7));
        assert!(matches(3, 7, 3, 7));
        assert!(!matches(4, 7, 3, 7));
        assert!(!matches(3, 8, 3, 7));
    }

    #[test]
    fn thread_levels_are_ordered() {
        assert!(ThreadLevel::Single < ThreadLevel::Multiple);
        assert!(ThreadLevel::Funneled < ThreadLevel::Serialized);
    }
}
