//! Communicators and collectives.
//!
//! A [`Comm`] wraps a PAMI [`Geometry`] with MPI-flavoured collectives:
//! `MPI_Barrier` over the GI network plus the L2 local barrier,
//! `MPI_Bcast`/`MPI_Allreduce`/`MPI_Reduce` over the collective network
//! with the shared-address intra-node scheme, the 10-color rectangle
//! broadcast (Figure 10), and the MPIX `comm_optimize`/`comm_deoptimize`
//! extensions that rotate scarce classroutes among an active set of
//! communicators.

use std::sync::Arc;

use bgq_collnet::ClassRouteError;
use bgq_hw::MemRegion;
use pami::coll::{self, Algorithm};
use pami::{CollOp, Context, DataType, Geometry};

use crate::mpi::Mpi;

/// One rank's view of a communicator.
#[derive(Clone)]
pub struct Comm {
    id: u32,
    geometry: Arc<Geometry>,
    rank: usize,
}

impl Comm {
    pub(crate) fn new(id: u32, geometry: Arc<Geometry>, task: u32) -> Comm {
        let rank = geometry
            .rank_of(task)
            .expect("a Comm is only constructed for member tasks");
        Comm { id, geometry, rank }
    }

    /// Communicator id (world = 0).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// This rank within the communicator (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Member count (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.geometry.size()
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &Arc<Geometry> {
        &self.geometry
    }

    /// Global task of communicator rank `rank`.
    pub fn task_of(&self, rank: usize) -> u32 {
        self.geometry.topology().task_at(rank)
    }

    // ---- MPIX classroute management ---------------------------------------

    /// `MPIX_Comm_optimize`: give this communicator a classroute so its
    /// collectives use the collective network. Fails when the node set is
    /// irregular or all route ids visible to its nodes are taken.
    pub fn optimize(&self) -> Result<(), ClassRouteError> {
        self.geometry.optimize()
    }

    /// `MPIX_Comm_deoptimize`: release the classroute for reuse by another
    /// communicator; collectives fall back to software algorithms.
    pub fn deoptimize(&self) {
        self.geometry.deoptimize()
    }

    /// Whether a classroute is currently attached.
    pub fn is_optimized(&self) -> bool {
        self.geometry.route().is_some()
    }

    /// `MPIX_Comm_algorithms_query`: every collective algorithm the stack
    /// knows, with availability evaluated against this communicator right
    /// now — [`Self::optimize`]/[`Self::deoptimize`] flip the hardware
    /// entries (and the rectangle broadcast) live.
    pub fn algorithms_query(&self) -> Vec<pami::coll::AlgInfo> {
        self.geometry.algorithms_query()
    }

    // ---- collectives (context-explicit, used internally) -------------------

    pub(crate) fn barrier_ctx(&self, ctx: &Arc<Context>) {
        coll::barrier(&self.geometry, ctx);
    }
}

/// Collective operations are methods on [`Mpi`] (they need the rank's
/// progress engine and lock discipline).
impl Mpi {
    /// `MPI_Barrier`.
    pub fn barrier(&self, comm: &Comm) {
        let _g = self.call_guard();
        coll::barrier(comm.geometry(), self.coll_context());
    }

    /// `MPI_Bcast` of `len` bytes at (`buf`, `offset`) from `root`.
    pub fn bcast(&self, buf: &MemRegion, offset: usize, len: usize, root: usize, comm: &Comm) {
        let _g = self.call_guard();
        coll::broadcast(comm.geometry(), self.coll_context(), root, buf, offset, len);
    }

    /// `MPI_Bcast` with an explicit algorithm (benchmark control).
    #[allow(clippy::too_many_arguments)]
    pub fn bcast_with(
        &self,
        alg: Algorithm,
        buf: &MemRegion,
        offset: usize,
        len: usize,
        root: usize,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::broadcast_with(comm.geometry(), self.coll_context(), alg, root, buf, offset, len);
    }

    /// The 10-color rectangle broadcast (Figure 10): stripes the buffer
    /// over up to ten edge-disjoint spanning trees of the torus for
    /// aggregate bandwidth approaching ten links.
    pub fn bcast_rect(&self, buf: &MemRegion, offset: usize, len: usize, root: usize, comm: &Comm) {
        let _g = self.call_guard();
        crate::rect_bcast::rect_broadcast(
            comm.geometry(),
            self.coll_context(),
            root,
            buf,
            offset,
            len,
        );
    }

    /// `MPI_Allreduce` of `count` 8-byte elements.
    #[allow(clippy::too_many_arguments)]
    pub fn allreduce(
        &self,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        count: usize,
        op: CollOp,
        dtype: DataType,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::allreduce(comm.geometry(), self.coll_context(), src, dst, count, op, dtype);
    }

    /// `MPI_Allreduce` with an explicit algorithm (benchmark control).
    #[allow(clippy::too_many_arguments)]
    pub fn allreduce_with(
        &self,
        alg: Algorithm,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        count: usize,
        op: CollOp,
        dtype: DataType,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::allreduce_with(comm.geometry(), self.coll_context(), alg, src, dst, count, op, dtype);
    }

    /// `MPI_Allreduce` through a named registry entry (e.g.
    /// `pami::coll::names::STREAM_ALLREDUCE` for the streaming chain
    /// pipeline). Panics if no allreduce is registered under `name`.
    #[allow(clippy::too_many_arguments)]
    pub fn allreduce_named(
        &self,
        name: &str,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        count: usize,
        op: CollOp,
        dtype: DataType,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::allreduce_named(comm.geometry(), self.coll_context(), name, src, dst, count, op, dtype);
    }

    /// `MPI_Reduce` of `count` 8-byte elements to `root`.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &self,
        root: usize,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        count: usize,
        op: CollOp,
        dtype: DataType,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::reduce(comm.geometry(), self.coll_context(), root, src, dst, count, op, dtype);
    }
}

/// The remaining collective wrappers (software algorithms over PAMI
/// point-to-point — the operations the paper lists as future work for
/// hardware acceleration).
impl Mpi {
    /// `MPI_Gather` of `blk` bytes per rank to `root`.
    #[allow(clippy::too_many_arguments)]
    pub fn gather(
        &self,
        root: usize,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        blk: usize,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::gather(comm.geometry(), self.coll_context(), root, src, dst, blk);
    }

    /// `MPI_Scatter` of `blk` bytes per rank from `root`.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter(
        &self,
        root: usize,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        blk: usize,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::scatter(comm.geometry(), self.coll_context(), root, src, dst, blk);
    }

    /// `MPI_Allgather` of `blk` bytes per rank.
    pub fn allgather(
        &self,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        blk: usize,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::allgather(comm.geometry(), self.coll_context(), src, dst, blk);
    }

    /// `MPI_Alltoall` of `blk` bytes per rank pair.
    pub fn alltoall(
        &self,
        src: (&MemRegion, usize),
        dst: (&MemRegion, usize),
        blk: usize,
        comm: &Comm,
    ) {
        let _g = self.call_guard();
        coll::alltoall(comm.geometry(), self.coll_context(), src, dst, blk);
    }
}

/// MPIX torus-awareness extensions: BG/Q MPI exposed the machine geometry
/// to applications so they could map ranks to the physical torus.
impl Comm {
    /// `MPIX_Rank2torus`: coordinates of the node hosting `rank`.
    pub fn rank_coords(&self, rank: usize) -> bgq_torus::Coords {
        let machine = self.geometry().machine();
        let node = machine.task_node(self.task_of(rank));
        machine.shape().coords_of(node as usize)
    }

    /// `MPIX_Torus2rank`: the lowest communicator rank on the node at
    /// `coords` (or `None` if no member lives there).
    pub fn coords_rank(&self, coords: bgq_torus::Coords) -> Option<usize> {
        let machine = self.geometry().machine();
        let node = machine.shape().node_index(coords) as u32;
        machine
            .node_tasks(node)
            .filter_map(|t| self.geometry().rank_of(t))
            .min()
    }

    /// Torus hop distance between two ranks' nodes — what an application
    /// uses to build locality-aware communication schedules.
    pub fn rank_distance(&self, a: usize, b: usize) -> u32 {
        let machine = self.geometry().machine();
        bgq_torus::hop_distance(machine.shape(), self.rank_coords(a), self.rank_coords(b))
    }
}
