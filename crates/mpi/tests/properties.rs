//! Property-based tests of the matching engine against a reference model
//! of the MPI matching rules.

use std::sync::Arc;

use bgq_hw::MemRegion;
use pami_mpi::matching::{MatchEngine, PostedRecv, Unexpected, UnexpectedData};
use pami_mpi::request::RequestInner;
use pami_mpi::{ANY_SOURCE, ANY_TAG};
use parking_lot::Mutex;
use proptest::prelude::*;

/// A reference model: plain vectors with first-match-in-order semantics.
#[derive(Default)]
struct Model {
    posted: Vec<(i32, i32, u32)>,
    unexpected: Vec<(i32, i32, u32)>,
}

fn matches(want_src: i32, want_tag: i32, src: i32, tag: i32) -> bool {
    (want_src == ANY_SOURCE || want_src == src) && (want_tag == ANY_TAG || want_tag == tag)
}

impl Model {
    fn arrive(&mut self, src: i32, tag: i32, comm: u32) -> Option<usize> {
        let idx = self
            .posted
            .iter()
            .position(|(s, t, c)| *c == comm && matches(*s, *t, src, tag));
        match idx {
            Some(i) => {
                self.posted.remove(i);
                Some(i)
            }
            None => {
                self.unexpected.push((src, tag, comm));
                None
            }
        }
    }

    fn post(&mut self, src: i32, tag: i32, comm: u32) -> Option<usize> {
        let idx = self
            .unexpected
            .iter()
            .position(|(s, t, c)| *c == comm && matches(src, tag, *s, *t));
        match idx {
            Some(i) => {
                self.unexpected.remove(i);
                Some(i)
            }
            None => {
                self.posted.push((src, tag, comm));
                None
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// An incoming message (src, tag, comm).
    Arrive(i32, i32, u32),
    /// A posted receive (src or ANY, tag or ANY, comm).
    Post(i32, i32, u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let src = prop_oneof![Just(ANY_SOURCE), 0i32..4];
    let tag = prop_oneof![Just(ANY_TAG), 0i32..4];
    let comm = 0u32..2;
    prop_oneof![
        (0i32..4, 0i32..4, comm.clone()).prop_map(|(s, t, c)| Op::Arrive(s, t, c)),
        (src, tag, comm).prop_map(|(s, t, c)| Op::Post(s, t, c)),
    ]
}

fn posted(src: i32, tag: i32, comm: u32) -> PostedRecv {
    PostedRecv {
        src,
        tag,
        comm,
        buffer: (MemRegion::zeroed(8), 0, 8),
        request: RequestInner::with_flag(),
    }
}

fn unexpected(src: i32, tag: i32, comm: u32) -> Unexpected {
    Unexpected {
        src,
        tag,
        comm,
        len: 0,
        staging: MemRegion::zeroed(0),
        state: Arc::new(Mutex::new(UnexpectedData::Ready)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleavings of arrivals and posts produce exactly the
    /// matches the MPI rules dictate, with identical queue residues.
    #[test]
    fn engine_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let engine = MatchEngine::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Arrive(src, tag, comm) => {
                    let model_hit = model.arrive(src, tag, comm);
                    let _g = engine.lock.lock();
                    let engine_hit = engine.match_posted(src, tag, comm);
                    match (model_hit, engine_hit) {
                        (Some(_), Some(hit)) => {
                            prop_assert!(matches(hit.src, hit.tag, src, tag));
                            prop_assert_eq!(hit.comm, comm);
                        }
                        (None, None) => engine.add_unexpected(unexpected(src, tag, comm)),
                        (m, e) => {
                            return Err(TestCaseError::fail(format!(
                                "divergence on arrive: model={m:?} engine_hit={}",
                                e.is_some()
                            )))
                        }
                    }
                }
                Op::Post(src, tag, comm) => {
                    let model_hit = model.post(src, tag, comm);
                    let _g = engine.lock.lock();
                    let engine_hit = engine.match_unexpected(src, tag, comm);
                    match (model_hit, engine_hit) {
                        (Some(_), Some(hit)) => {
                            prop_assert!(matches(src, tag, hit.src, hit.tag));
                            prop_assert_eq!(hit.comm, comm);
                        }
                        (None, None) => engine.add_posted(posted(src, tag, comm)),
                        (m, e) => {
                            return Err(TestCaseError::fail(format!(
                                "divergence on post: model={m:?} engine_hit={}",
                                e.is_some()
                            )))
                        }
                    }
                }
            }
            prop_assert_eq!(engine.posted_len(), model.posted.len());
            prop_assert_eq!(engine.unexpected_len(), model.unexpected.len());
        }
    }

    /// A message can match at most one receive and vice versa (conservation:
    /// total matches + residues == total operations).
    #[test]
    fn matching_conserves_messages(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let engine = MatchEngine::new();
        let mut arrivals = 0usize;
        let mut posts = 0usize;
        let mut matched = 0usize;
        for op in ops {
            match op {
                Op::Arrive(src, tag, comm) => {
                    arrivals += 1;
                    let _g = engine.lock.lock();
                    match engine.match_posted(src, tag, comm) {
                        Some(_) => matched += 1,
                        None => engine.add_unexpected(unexpected(src, tag, comm)),
                    }
                }
                Op::Post(src, tag, comm) => {
                    posts += 1;
                    let _g = engine.lock.lock();
                    match engine.match_unexpected(src, tag, comm) {
                        Some(_) => matched += 1,
                        None => engine.add_posted(posted(src, tag, comm)),
                    }
                }
            }
        }
        prop_assert_eq!(engine.unexpected_len() + matched, arrivals);
        prop_assert_eq!(engine.posted_len() + matched, posts);
    }
}
