//! End-to-end tests of the MPI layer: point-to-point with matching and
//! wildcards, both library flavors, commthreads, waitall, communicator
//! management, and collectives including the rectangle broadcast.

use std::sync::Arc;

use bgq_collnet::ops::elems;
use pami::coll::Algorithm;
use pami::Machine;
use pami_mpi::{
    CollOp, DataType, LibFlavor, MemRegion, Mpi, MpiConfig, ThreadLevel, ANY_SOURCE, ANY_TAG,
};

fn run_mpi<F>(nodes: usize, ppn: usize, config: MpiConfig, f: F)
where
    F: Fn(&Mpi) + Send + Sync,
{
    let machine = Machine::with_nodes(nodes).ppn(ppn).build();
    machine.run(|env| {
        let mpi = Mpi::init(&env.machine, env.task, config.clone());
        env.machine.task_barrier();
        f(&mpi);
        mpi.barrier(mpi.world());
    });
}

fn ping_pong(mpi: &Mpi) {
    let world = mpi.world().clone();
    let me = world.rank();
    let buf = MemRegion::zeroed(64);
    if me == 0 {
        buf.write(0, b"ping");
        mpi.send(&buf, 0, 4, 1, 7, &world);
        let st = mpi.recv(&buf, 0, 64, 1, 8, &world);
        assert_eq!(st.len, 4);
        assert_eq!(&buf.to_vec()[..4], b"pong");
    } else if me == 1 {
        let st = mpi.recv(&buf, 0, 64, 0, 7, &world);
        assert_eq!(st.len, 4);
        assert_eq!(st.source, 0);
        assert_eq!(st.tag, 7);
        assert_eq!(&buf.to_vec()[..4], b"ping");
        buf.write(0, b"pong");
        mpi.send(&buf, 0, 4, 0, 8, &world);
    }
}

#[test]
fn ping_pong_classic_single() {
    run_mpi(2, 1, MpiConfig::default(), ping_pong);
}

#[test]
fn ping_pong_classic_multiple() {
    run_mpi(
        2,
        1,
        MpiConfig {
            flavor: LibFlavor::Classic,
            thread_level: ThreadLevel::Multiple,
            contexts: 1,
            commthreads: Some(0),
        },
        ping_pong,
    );
}

#[test]
fn ping_pong_threadopt_multiple() {
    run_mpi(
        2,
        1,
        MpiConfig {
            flavor: LibFlavor::ThreadOptimized,
            thread_level: ThreadLevel::Multiple,
            contexts: 2,
            commthreads: Some(0),
        },
        ping_pong,
    );
}

#[test]
fn ping_pong_threadopt_commthreads() {
    run_mpi(2, 1, MpiConfig::thread_optimized(2), ping_pong);
}

#[test]
fn ping_pong_classic_commthreads() {
    // The classic library with commthreads (the slow Table 2 row) must
    // still be correct.
    run_mpi(
        2,
        1,
        MpiConfig {
            flavor: LibFlavor::Classic,
            thread_level: ThreadLevel::Multiple,
            contexts: 1,
            commthreads: Some(1),
        },
        ping_pong,
    );
}

#[test]
fn unexpected_messages_then_matching_recv() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        if world.rank() == 0 {
            // Send before the receiver posts: all unexpected.
            let buf = MemRegion::from_vec((0..32).collect());
            for tag in 0..4 {
                mpi.send(&buf, (tag * 8) as usize, 8, 1, tag, &world);
            }
        } else {
            // Give the messages time to land unexpected.
            let probe = std::time::Instant::now();
            while mpi.matcher().unexpected_len() < 4 {
                mpi.advance();
                assert!(probe.elapsed().as_secs() < 10, "unexpected never arrived");
            }
            // Receive in reverse tag order — matching is by tag, not
            // arrival.
            for tag in (0..4).rev() {
                let buf = MemRegion::zeroed(8);
                let st = mpi.recv(&buf, 0, 8, 0, tag, &world);
                assert_eq!(st.len, 8);
                let want: Vec<u8> = ((tag * 8) as u8..(tag * 8 + 8) as u8).collect();
                assert_eq!(buf.to_vec(), want, "tag {tag}");
            }
            assert_eq!(mpi.matcher().unexpected_len(), 0);
        }
    });
}

#[test]
fn wildcard_any_source_any_tag() {
    run_mpi(4, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        if me == 0 {
            let mut froms = Vec::new();
            for _ in 0..3 {
                let buf = MemRegion::zeroed(8);
                let st = mpi.recv(&buf, 0, 8, ANY_SOURCE, ANY_TAG, &world);
                assert_eq!(st.len, 8);
                assert_eq!(buf.to_vec()[0] as i32, st.source, "payload marks sender");
                assert_eq!(st.tag, 100 + st.source);
                froms.push(st.source);
            }
            froms.sort_unstable();
            assert_eq!(froms, vec![1, 2, 3]);
        } else {
            let buf = MemRegion::from_vec(vec![me as u8; 8]);
            mpi.send(&buf, 0, 8, 0, 100 + me as i32, &world);
        }
    });
}

#[test]
fn large_messages_use_rendezvous() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let len = 512 * 1024;
        if world.rank() == 0 {
            let data: Vec<u8> = (0..len).map(|i| (i % 247) as u8).collect();
            let buf = MemRegion::from_vec(data);
            mpi.send(&buf, 0, len, 1, 5, &world);
        } else {
            let buf = MemRegion::zeroed(len);
            let st = mpi.recv(&buf, 0, len, 0, 5, &world);
            assert_eq!(st.len, len);
            let v = buf.to_vec();
            assert!(v.iter().enumerate().all(|(i, &b)| b == (i % 247) as u8));
            // RDMA delivered the payload.
            if cfg!(feature = "telemetry") {
                let node = mpi.machine().task_node(1);
                assert_eq!(
                    mpi.machine().fabric().counters(node).put_bytes_in.value(),
                    len as u64
                );
            }
        }
    });
}

#[test]
fn isend_irecv_waitall_two_phase() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        const N: usize = 32;
        let peer = 1 - me;
        let send_buf = MemRegion::from_vec(vec![me as u8; N * 16]);
        let recv_buf = MemRegion::zeroed(N * 16);
        let mut reqs = Vec::new();
        for i in 0..N {
            reqs.push(mpi.irecv(&recv_buf, i * 16, 16, peer as i32, i as i32, &world));
        }
        // Barrier so all receives are pre-posted (the Figure 5 discipline).
        mpi.barrier(&world);
        for i in 0..N {
            reqs.push(mpi.isend(&send_buf, i * 16, 16, peer, i as i32, &world));
        }
        let statuses = mpi.waitall(&reqs);
        assert_eq!(statuses.len(), 2 * N);
        for st in &statuses[..N] {
            assert_eq!(st.len, 16);
            assert_eq!(st.source, peer as i32);
        }
        assert!(recv_buf.to_vec().iter().all(|&b| b == peer as u8));
        // Everything was pre-posted: no unexpected messages.
        assert_eq!(mpi.matcher().unexpected_len(), 0);
        if cfg!(feature = "telemetry") {
            assert_eq!(mpi.matcher().unexpected_count(), 0);
            assert_eq!(mpi.matcher().matched_posted_count(), N as u64);
        }
    });
}

#[test]
fn message_ordering_between_pairs() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        if world.rank() == 0 {
            let buf = MemRegion::zeroed(8);
            for i in 0..100u64 {
                buf.write(0, &i.to_le_bytes());
                mpi.send(&buf, 0, 8, 1, 3, &world);
            }
        } else {
            let buf = MemRegion::zeroed(8);
            for i in 0..100u64 {
                // Same (src, tag): must arrive in send order.
                mpi.recv(&buf, 0, 8, 0, 3, &world);
                let mut b = [0u8; 8];
                buf.read(0, &mut b);
                assert_eq!(u64::from_le_bytes(b), i, "MPI ordering violated");
            }
        }
    });
}

#[test]
fn collectives_barrier_bcast_allreduce_reduce() {
    run_mpi(2, 2, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        mpi.barrier(&world);

        // Bcast over the optimized (classroute) path.
        world.optimize().expect("world nodes are rectangular");
        assert!(world.is_optimized());
        let len = 200_000;
        let buf = if me == 1 {
            MemRegion::from_vec((0..len).map(|i| (i % 83) as u8).collect())
        } else {
            MemRegion::zeroed(len)
        };
        mpi.bcast(&buf, 0, len, 1, &world);
        assert!(buf.to_vec().iter().enumerate().all(|(i, &b)| b == (i % 83) as u8));

        // Allreduce.
        let src = MemRegion::from_vec(elems::from_i64(&[me as i64, 2 * me as i64]));
        let dst = MemRegion::zeroed(16);
        mpi.allreduce((&src, 0), (&dst, 0), 2, CollOp::Sum, DataType::Int64, &world);
        assert_eq!(elems::to_i64(&dst.to_vec()), vec![6, 12]);

        // Reduce to rank 2.
        let rdst = MemRegion::from_vec(elems::from_i64(&[-7]));
        mpi.reduce(2, (&src, 0), (&rdst, 0), 1, CollOp::Max, DataType::Int64, &world);
        if me == 2 {
            assert_eq!(elems::to_i64(&rdst.to_vec()), vec![3]);
        } else {
            assert_eq!(elems::to_i64(&rdst.to_vec()), vec![-7]);
        }
    });
}

#[test]
fn sw_and_hw_collectives_agree() {
    run_mpi(2, 2, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        world.optimize().unwrap();
        let me = world.rank() as i64;
        for alg in [Algorithm::HwCollNet, Algorithm::SwBinomial] {
            let src = MemRegion::from_vec(elems::from_i64(&[me + 1]));
            let dst = MemRegion::zeroed(8);
            mpi.allreduce_with(alg, (&src, 0), (&dst, 0), 1, CollOp::Sum, DataType::Int64, &world);
            assert_eq!(elems::to_i64(&dst.to_vec()), vec![10], "{alg:?}");
        }
    });
}

#[test]
fn rectangle_broadcast_delivers_everywhere() {
    run_mpi(8, 2, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        let len = 400_000; // ~40 KB per color slice
        let buf = if me == 0 {
            MemRegion::from_vec((0..len).map(|i| (i % 101) as u8).collect())
        } else {
            MemRegion::zeroed(len)
        };
        mpi.bcast_rect(&buf, 0, len, 0, &world);
        let v = buf.to_vec();
        assert!(
            v.iter().enumerate().all(|(i, &b)| b == (i % 101) as u8),
            "rank {me} has wrong data"
        );
    });
}

#[test]
fn rectangle_broadcast_nonzero_root() {
    run_mpi(4, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        let len = 64 * 1024;
        let buf = if me == 3 {
            MemRegion::from_vec(vec![0x5A; len])
        } else {
            MemRegion::zeroed(len)
        };
        mpi.bcast_rect(&buf, 0, len, 3, &world);
        assert_eq!(buf.to_vec(), vec![0x5A; len], "rank {me}");
    });
}

#[test]
fn algorithms_query_tracks_optimize_state() {
    // `MPIX_Comm_algorithms_query` through the registry must reproduce the
    // old `use_hw` decision live: hardware entries flip with
    // optimize()/deoptimize(), the software fallbacks never disappear, and
    // the MPI-layer rectangle broadcast is listed with its own availability
    // (multi-node rectangular communicator, route or not).
    run_mpi(4, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let find = |name: &str| {
            world
                .algorithms_query()
                .into_iter()
                .find(|i| i.name == name)
                .unwrap_or_else(|| panic!("{name} not in algorithms_query"))
        };
        assert!(!find("hw-collnet-bcast").available);
        assert!(!find("hw-collnet-allreduce").available);
        assert!(find("sw-binomial-bcast").available);
        assert!(find("sw-binomial-allreduce").available);
        assert!(find("gi-barrier").available);
        assert!(
            find("rect-bcast").available,
            "rectangle broadcast only needs a rectangular node set, not a classroute"
        );
        assert!(
            find("rect-bcast").cost > find("sw-binomial-bcast").cost,
            "layered specialist never wins auto-selection"
        );

        mpi.barrier(&world);
        world.optimize().expect("world nodes are rectangular");
        assert!(find("hw-collnet-bcast").available);
        assert!(find("hw-collnet-allreduce").available);
        assert!(find("collnet-barrier").available);
        assert!(
            find("hw-collnet-bcast").cost < find("sw-binomial-bcast").cost,
            "hardware wins auto-selection while the route is attached"
        );

        mpi.barrier(&world);
        if world.rank() == 0 {
            world.deoptimize();
        }
        mpi.barrier(&world);
        assert!(!find("hw-collnet-bcast").available);
        assert!(find("sw-binomial-bcast").available);
    });
}

#[test]
fn comm_split_colors_and_collectives() {
    run_mpi(4, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        let color = (me % 2) as i32;
        let sub = mpi.comm_split(&world, color, me as i32).expect("defined color");
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.rank(), me / 2);
        // Allreduce within the halves.
        let src = MemRegion::from_vec(elems::from_i64(&[me as i64]));
        let dst = MemRegion::zeroed(8);
        mpi.allreduce((&src, 0), (&dst, 0), 1, CollOp::Sum, DataType::Int64, &sub);
        let want = if color == 0 { 2 } else { 4 }; // 0+2 vs 1+3
        assert_eq!(elems::to_i64(&dst.to_vec()), vec![want]);
    });
}

#[test]
fn comm_split_undefined_color() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let color = if world.rank() == 0 { 0 } else { -1 };
        let sub = mpi.comm_split(&world, color, 0);
        if world.rank() == 0 {
            assert_eq!(sub.expect("rank 0 keeps a comm").size(), 1);
        } else {
            assert!(sub.is_none());
        }
    });
}

#[test]
fn classroute_rotation_between_communicators() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let dup = mpi.comm_dup(&world);
        world.optimize().unwrap();
        // Exhaust the remaining user routes with dups of world's rectangle.
        // (COMM_WORLD's boot route + ours are already placed.)
        if dup.optimize().is_ok() {
            dup.deoptimize();
        }
        mpi.barrier(&world);
        if world.rank() == 0 {
            world.deoptimize();
        }
        mpi.barrier(&world);
        assert!(!world.is_optimized());
        // Collectives still function (software path).
        let src = MemRegion::from_vec(elems::from_i64(&[1]));
        let dst = MemRegion::zeroed(8);
        mpi.allreduce((&src, 0), (&dst, 0), 1, CollOp::Sum, DataType::Int64, &world);
        assert_eq!(elems::to_i64(&dst.to_vec()), vec![2]);
    });
}

#[test]
fn multithreaded_sends_thread_multiple() {
    // MPI_THREAD_MULTIPLE: several threads of one rank send concurrently.
    let machine = Machine::with_nodes(2).build();
    machine.run(|env| {
        let mpi = Arc::new(Mpi::init(
            &env.machine,
            env.task,
            MpiConfig {
                flavor: LibFlavor::ThreadOptimized,
                thread_level: ThreadLevel::Multiple,
                contexts: 4,
                commthreads: Some(0),
            },
        ));
        env.machine.task_barrier();
        let world = mpi.world().clone();
        const PER_THREAD: usize = 20;
        const THREADS: usize = 3;
        if world.rank() == 0 {
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let mpi = Arc::clone(&mpi);
                    let world = world.clone();
                    s.spawn(move || {
                        let buf = MemRegion::from_vec(vec![t as u8; 8]);
                        for i in 0..PER_THREAD {
                            mpi.send(&buf, 0, 8, 1, (t * 1000 + i) as i32, &world);
                        }
                    });
                }
            });
        } else {
            let buf = MemRegion::zeroed(8);
            for t in 0..THREADS {
                for i in 0..PER_THREAD {
                    let st = mpi.recv(&buf, 0, 8, 0, (t * 1000 + i) as i32, &world);
                    assert_eq!(st.len, 8);
                    assert_eq!(buf.to_vec()[0] as usize, t);
                }
            }
        }
        mpi.barrier(&world);
    });
}

#[test]
fn gather_scatter_allgather_alltoall() {
    run_mpi(2, 2, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        let n = world.size();
        let blk = 16;

        // Gather to rank 1.
        let src = MemRegion::from_vec(vec![me as u8 + 1; blk]);
        let gdst = MemRegion::zeroed(n * blk);
        mpi.gather(1, (&src, 0), (&gdst, 0), blk, &world);
        if me == 1 {
            let v = gdst.to_vec();
            for r in 0..n {
                assert!(v[r * blk..(r + 1) * blk].iter().all(|&b| b == r as u8 + 1));
            }
        }

        // Scatter from rank 1 (reuse the gathered buffer).
        let sdst = MemRegion::zeroed(blk);
        mpi.scatter(1, (&gdst, 0), (&sdst, 0), blk, &world);
        assert!(sdst.to_vec().iter().all(|&b| b == me as u8 + 1));

        // Allgather.
        let agdst = MemRegion::zeroed(n * blk);
        mpi.allgather((&src, 0), (&agdst, 0), blk, &world);
        let v = agdst.to_vec();
        for r in 0..n {
            assert!(v[r * blk..(r + 1) * blk].iter().all(|&b| b == r as u8 + 1));
        }

        // Alltoall.
        let a2a_src = MemRegion::from_vec(
            (0..n).flat_map(|j| vec![(10 * me + j) as u8; blk]).collect(),
        );
        let a2a_dst = MemRegion::zeroed(n * blk);
        mpi.alltoall((&a2a_src, 0), (&a2a_dst, 0), blk, &world);
        let v = a2a_dst.to_vec();
        for i in 0..n {
            assert!(v[i * blk..(i + 1) * blk].iter().all(|&b| b == (10 * i + me) as u8));
        }
    });
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        let peer = 1 - me;
        let send = MemRegion::from_vec(vec![me as u8; 64]);
        let recv = MemRegion::zeroed(64);
        let st = mpi.sendrecv((&send, 0, 64), peer, 9, (&recv, 0, 64), peer as i32, 9, &world);
        assert_eq!(st.source, peer as i32);
        assert_eq!(st.len, 64);
        assert!(recv.to_vec().iter().all(|&b| b == peer as u8));
    });
}

#[test]
fn probe_sees_unexpected_without_consuming() {
    run_mpi(2, 1, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        if world.rank() == 0 {
            let buf = MemRegion::from_vec(vec![3u8; 24]);
            mpi.send(&buf, 0, 24, 1, 42, &world);
        } else {
            let st = mpi.probe(ANY_SOURCE, ANY_TAG, &world);
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 42);
            assert_eq!(st.len, 24);
            // Probing again still sees it.
            assert!(mpi.iprobe(0, 42, &world).is_some());
            // Now actually receive it.
            let buf = MemRegion::zeroed(24);
            let st2 = mpi.recv(&buf, 0, 24, 0, 42, &world);
            assert_eq!(st2.len, 24);
            assert!(buf.to_vec().iter().all(|&b| b == 3));
            assert!(mpi.iprobe(0, 42, &world).is_none(), "consumed");
        }
    });
}

#[test]
fn mpix_torus_queries() {
    run_mpi(8, 2, MpiConfig::default(), |mpi| {
        let world = mpi.world().clone();
        let me = world.rank();
        let my_coords = world.rank_coords(me);
        // Same-node peers share coordinates.
        let node_peer = me ^ 1;
        assert_eq!(world.rank_coords(node_peer), my_coords);
        assert_eq!(world.rank_distance(me, node_peer), 0);
        // coords→rank gives the node's lowest member.
        let back = world.coords_rank(my_coords).unwrap();
        assert_eq!(back, me & !1);
        // Distances are symmetric and within the diameter.
        for other in 0..world.size() {
            let d = world.rank_distance(me, other);
            assert_eq!(d, world.rank_distance(other, me));
            assert!(d <= mpi.machine().shape().diameter());
        }
    });
}
