//! Machine constants.
//!
//! Sources: the paper itself (link speeds, packet format, FIFO counts,
//! cache sizes), the BG/Q network paper \[2\] (hop latencies), and
//! calibration against the evaluation numbers where the paper gives only
//! the measurement (per-message software costs). Every constant is a plain
//! field so ablations can sweep it.

/// All timing/bandwidth constants of the modeled machine.
#[derive(Debug, Clone)]
pub struct MachineParams {
    // ---- links & packets -------------------------------------------------
    /// Raw per-direction link bandwidth (B/s): 2 GB/s.
    pub link_raw_bw: f64,
    /// Application payload bandwidth per link direction after header and
    /// protocol overhead (B/s): 1.8 GB/s.
    pub link_payload_bw: f64,
    /// Per-hop router latency (s) on the torus, ~40 ns.
    pub hop_latency: f64,
    /// Per-hop latency of the collective-combine logic (adds arithmetic to
    /// the router pass-through), ~65 ns.
    pub collective_hop_latency: f64,
    /// Per-hop latency of the global-interrupt (barrier) logic, ~55 ns.
    pub gi_hop_latency: f64,

    // ---- node memory system ----------------------------------------------
    /// L2 cache capacity (B): 32 MB.
    pub l2_capacity: f64,
    /// Aggregate copy bandwidth when working sets stay in L2 (B/s).
    pub l2_copy_bw: f64,
    /// Aggregate copy bandwidth once working sets spill to DDR (B/s).
    pub ddr_copy_bw: f64,
    /// What a single A2 thread can memcpy (B/s) — the eager receiver's
    /// packet-payload copy rate.
    pub core_copy_bw: f64,

    // ---- software costs ---------------------------------------------------
    /// One-way PAMI_Send_immediate software cost (s): descriptor build and
    /// immediate injection, plus dispatch at the target.
    pub pami_immediate_sw: f64,
    /// Extra cost of the queued PAMI_Send path over send-immediate (s).
    pub pami_send_queue_extra: f64,
    /// MPI-layer cost over PAMI per message (s): matching, request object,
    /// comm/tag hashing ("MPI libraries must match receives …").
    pub mpi_match_overhead: f64,
    /// Cost of taking/releasing the classic global lock per call (s).
    pub mpi_global_lock: f64,
    /// Memory-synchronization cost the thread-optimized library pays even
    /// at MPI_THREAD_SINGLE (s).
    pub mpi_threadopt_sync: f64,
    /// Extra half-round-trip cost when the classic library contends with
    /// commthreads for the context locks (s) — the 8.7 µs row of Table 2.
    pub classic_commthread_penalty: f64,
    /// Extra cost for the thread-optimized library coordinating with
    /// commthreads (s) — 3.25 vs 2.96 µs in Table 2.
    pub threadopt_commthread_extra: f64,

    // ---- message-rate model (Figure 5) -------------------------------------
    /// Per-message software cost on the PAMI message-rate path (s).
    pub pami_msg_cost: f64,
    /// Per-message software cost on the MPI message-rate path (s).
    pub mpi_msg_cost: f64,
    /// Per-message cost with the thread-optimized library driving the
    /// commthread handoff (s) — slightly above `mpi_msg_cost` before the
    /// parallelism is applied.
    pub mpi_threadopt_msg_cost: f64,
    /// Node-level ceiling on messages/second through the MU.
    pub mu_message_cap: f64,
    /// Rate penalty multiplier for ANY_SOURCE wildcard receives.
    pub wildcard_penalty: f64,
    /// Hardware threads per node available to applications.
    pub hw_threads: usize,
    /// Commthread speedup saturation shape: s = 1 + gain·c/(c+knee) for c
    /// free commthreads per process.
    pub commthread_gain: f64,
    /// See `commthread_gain`.
    pub commthread_knee: f64,

    // ---- local collectives --------------------------------------------------
    /// Fixed software cost of an MPI collective call (s).
    pub coll_sw_base: f64,
    /// Software cost of driving an allreduce (descriptor injection,
    /// counter polling) at ppn = 1 (s).
    pub allreduce_sw: f64,
    /// How much of `allreduce_sw` parallel local math hides as ppn grows
    /// (s, scaled by 1 − 1/ppn).
    pub allreduce_parallel_hide: f64,
    /// L2-atomic local barrier cost at ppn > 1 (s): base + slope·log2(ppn).
    pub local_barrier_base: f64,
    /// See `local_barrier_base`.
    pub local_barrier_slope: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            link_raw_bw: 2.0e9,
            link_payload_bw: 1.8e9,
            hop_latency: 40e-9,
            collective_hop_latency: 65e-9,
            gi_hop_latency: 55e-9,

            l2_capacity: 32.0 * 1024.0 * 1024.0,
            l2_copy_bw: 90.0e9,
            ddr_copy_bw: 16.0e9,
            core_copy_bw: 4.3e9,

            pami_immediate_sw: 1.12e-6,
            pami_send_queue_extra: 0.14e-6,
            mpi_match_overhead: 0.63e-6,
            mpi_global_lock: 0.33e-6,
            mpi_threadopt_sync: 0.55e-6,
            classic_commthread_penalty: 6.4e-6,
            threadopt_commthread_extra: 0.29e-6,

            pami_msg_cost: 0.30e-6,
            mpi_msg_cost: 1.40e-6,
            mpi_threadopt_msg_cost: 1.55e-6,
            mu_message_cap: 120.0e6,
            wildcard_penalty: 0.82,
            hw_threads: 64,
            commthread_gain: 1.75,
            commthread_knee: 5.0,

            coll_sw_base: 0.6e-6,
            allreduce_sw: 2.4e-6,
            allreduce_parallel_hide: 1.0e-6,
            local_barrier_base: 1.1e-6,
            local_barrier_slope: 0.1e-6,
        }
    }
}

impl MachineParams {
    /// Payload efficiency of the wire format (≈ 0.9).
    pub fn payload_efficiency(&self) -> f64 {
        self.link_payload_bw / self.link_raw_bw
    }

    /// Cost of the intra-node L2 barrier at `ppn` processes (0 at ppn = 1).
    pub fn local_barrier(&self, ppn: usize) -> f64 {
        if ppn <= 1 {
            0.0
        } else {
            self.local_barrier_base + self.local_barrier_slope * (ppn as f64).log2()
        }
    }

    /// Commthreads available to each of `ppn` processes (the paper: "with
    /// one MPI process per node we can have up to sixteen contexts and
    /// sixteen acceleration communication threads").
    pub fn commthreads_per_process(&self, ppn: usize) -> usize {
        ((self.hw_threads - ppn) / ppn).min(16)
    }

    /// Message-rate speedup from commthreads at `ppn` (≈2.4× at ppn = 1,
    /// shrinking as free hardware threads per process shrink).
    pub fn commthread_speedup(&self, ppn: usize) -> f64 {
        let c = self.commthreads_per_process(ppn) as f64;
        1.0 + self.commthread_gain * c / (c + self.commthread_knee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_ninety_percent() {
        let p = MachineParams::default();
        assert!((p.payload_efficiency() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn local_barrier_grows_with_ppn() {
        let p = MachineParams::default();
        assert_eq!(p.local_barrier(1), 0.0);
        assert!(p.local_barrier(4) > 0.0);
        assert!(p.local_barrier(16) > p.local_barrier(4));
    }

    #[test]
    fn commthread_speedup_shrinks_with_ppn() {
        let p = MachineParams::default();
        let s1 = p.commthread_speedup(1);
        let s4 = p.commthread_speedup(4);
        let s16 = p.commthread_speedup(16);
        assert!(s1 > 2.2 && s1 < 2.6, "≈2.4× at ppn=1, got {s1}");
        assert!(s1 >= s4 && s4 > s16 && s16 > 1.0);
    }

}
