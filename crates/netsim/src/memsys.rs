//! The node memory-system model.
//!
//! The paper's large-message collective curves are shaped by one effect:
//! "for larger messages, the send and receive buffers spill out of the L2
//! cache and must be read and stored to DDR … the performance is driven by
//! DDR throughput which is lower than the level-2 cache." This module
//! computes working sets and the resulting copy bandwidth.

use crate::config::MachineParams;

/// Which memory level a working set runs from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Fits in the 32 MB L2.
    L2,
    /// Spills to DDR.
    Ddr,
}

/// Residency of a `working_set`-byte footprint.
pub fn residency(params: &MachineParams, working_set: f64) -> Residency {
    if working_set <= params.l2_capacity {
        Residency::L2
    } else {
        Residency::Ddr
    }
}

/// Aggregate copy bandwidth available to intra-node buffer movement given
/// the working set.
pub fn copy_bw(params: &MachineParams, working_set: f64) -> f64 {
    match residency(params, working_set) {
        Residency::L2 => params.l2_copy_bw,
        Residency::Ddr => params.ddr_copy_bw,
    }
}

/// Working set of an allreduce at `ppn` processes with `size`-byte buffers:
/// every process's input and output plus the node accumulation buffer.
pub fn allreduce_working_set(size: f64, ppn: usize) -> f64 {
    size * (2.0 * ppn as f64 + 2.0)
}

/// Working set of a broadcast: the master's buffer plus each peer's copy
/// (read + write streams).
pub fn broadcast_working_set(size: f64, ppn: usize) -> f64 {
    size * 2.0 * ppn as f64
}

/// Intra-node bytes moved to fan a `size`-byte result out to `ppn`
/// processes (peers read the master's buffer and write their own).
pub fn fanout_bytes(size: f64, ppn: usize) -> f64 {
    if ppn <= 1 {
        0.0
    } else {
        2.0 * (ppn - 1) as f64 * size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_thresholds_match_paper_peaks() {
        let p = MachineParams::default();
        let mb = 1024.0 * 1024.0;
        // Allreduce: ppn=1 spills above 8 MB (the paper's ppn=1 peak is at
        // 8 MB), ppn=4 above 2 MB (peak at 2 MB), ppn=16 below 1 MB (peak
        // at 512 KB).
        assert_eq!(residency(&p, allreduce_working_set(8.0 * mb, 1)), Residency::L2);
        assert_eq!(residency(&p, allreduce_working_set(9.0 * mb, 1)), Residency::Ddr);
        assert_eq!(residency(&p, allreduce_working_set(2.0 * mb, 4)), Residency::L2);
        assert_eq!(residency(&p, allreduce_working_set(4.0 * mb, 4)), Residency::Ddr);
        assert_eq!(residency(&p, allreduce_working_set(0.5 * mb, 16)), Residency::L2);
        assert_eq!(residency(&p, allreduce_working_set(1.0 * mb, 16)), Residency::Ddr);
    }

    #[test]
    fn broadcast_spills_later_than_allreduce() {
        let p = MachineParams::default();
        let mb = 1024.0 * 1024.0;
        // Broadcast at ppn=4 peaks at 4 MB in the paper.
        assert_eq!(residency(&p, broadcast_working_set(4.0 * mb, 4)), Residency::L2);
        assert_eq!(residency(&p, broadcast_working_set(5.0 * mb, 4)), Residency::Ddr);
        // ppn=16 peak at 1 MB.
        assert_eq!(residency(&p, broadcast_working_set(1.0 * mb, 16)), Residency::L2);
        assert_eq!(residency(&p, broadcast_working_set(2.0 * mb, 16)), Residency::Ddr);
    }

    #[test]
    fn ddr_is_slower_than_l2() {
        let p = MachineParams::default();
        assert!(copy_bw(&p, 1e9) < copy_bw(&p, 1e6));
    }

    #[test]
    fn fanout_bytes_zero_at_ppn1() {
        assert_eq!(fanout_bytes(1e6, 1), 0.0);
        assert_eq!(fanout_bytes(1e6, 4), 6e6);
    }
}
