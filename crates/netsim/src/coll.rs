//! Collective models at machine scale: Figures 6–10.
//!
//! Latency figures (6, 7) run the event-driven tree simulation over the
//! actual classroute spanning tree of the node count. Throughput figures
//! (8, 9, 10) use the closed-form pipeline expression — validated against
//! the DES on small trees by the tests here — combined with the
//! [`crate::memsys`] working-set model that produces the high-PPN
//! falloffs.

use bgq_torus::packet::MAX_PAYLOAD_BYTES;
use bgq_torus::{Coords, Rectangle, SpanningTree, TorusShape, TreeKind, ALL_DIMS};

use crate::config::MachineParams;
use crate::memsys;
use crate::tree_sim;

/// The classroute tree over an `nodes`-node partition (root at the
/// low corner, canonical dimension order).
pub fn world_tree(nodes: usize) -> SpanningTree {
    let shape = TorusShape::for_nodes(nodes);
    SpanningTree::build(
        shape,
        Rectangle::full(shape),
        Coords([0; 5]),
        TreeKind::DimOrdered(ALL_DIMS),
    )
}

/// Wire time of one full packet (payload granularity of the pipelines).
fn packet_time(params: &MachineParams) -> f64 {
    MAX_PAYLOAD_BYTES as f64 / params.link_payload_bw
}

// ---------------------------------------------------------------------------
// Figure 6 — MPI_Barrier latency
// ---------------------------------------------------------------------------

/// Modeled `MPI_Barrier` latency (s) on `nodes` nodes at `ppn` processes
/// per node: GI round trip over the classroute tree plus the L2 local
/// barrier and call overhead.
pub fn barrier_latency(params: &MachineParams, nodes: usize, ppn: usize) -> f64 {
    let tree = world_tree(nodes);
    params.coll_sw_base
        + tree_sim::signal_round_trip(&tree, params.gi_hop_latency)
        + params.local_barrier(ppn)
}

// ---------------------------------------------------------------------------
// Figure 7 — MPI_Allreduce (one double) latency
// ---------------------------------------------------------------------------

/// Modeled single-element `MPI_Allreduce` latency (s): a combine round
/// trip over the classroute tree plus injection/polling software, with the
/// parallel local math hiding part of the software cost at ppn > 1.
pub fn allreduce_latency(params: &MachineParams, nodes: usize, ppn: usize) -> f64 {
    let tree = world_tree(nodes);
    let round_trip = tree_sim::signal_round_trip(&tree, params.collective_hop_latency);
    let hidden = params.allreduce_parallel_hide * (1.0 - 1.0 / ppn as f64);
    params.coll_sw_base
        + round_trip
        + params.allreduce_sw
        - hidden
        + 0.5 * params.local_barrier(ppn)
}

// ---------------------------------------------------------------------------
// Throughput pipelines (Figures 8–10)
// ---------------------------------------------------------------------------

/// Closed-form completion time of a packet-pipelined broadcast of `size`
/// bytes down `tree`: serialization plus store-and-forward depth. Matches
/// [`tree_sim::pipeline_broadcast`] (see tests).
fn pipeline_time(params: &MachineParams, tree: &SpanningTree, size: f64) -> f64 {
    let st = packet_time(params);
    let slices = (size / MAX_PAYLOAD_BYTES as f64).ceil();
    slices * st + tree.max_depth() as f64 * (params.hop_latency + st)
}

/// Combine-then-broadcast (allreduce) pipeline time: roughly twice the
/// depth term (up and down) on top of the serialization.
fn combine_pipeline_time(params: &MachineParams, tree: &SpanningTree, size: f64) -> f64 {
    let st = packet_time(params);
    let slices = (size / MAX_PAYLOAD_BYTES as f64).ceil();
    slices * st
        + 2.0 * tree.max_depth() as f64 * (params.collective_hop_latency + st)
}

/// Figure 8: `MPI_Allreduce` throughput (B/s) for `size`-byte buffers on
/// `nodes` nodes at `ppn` processes.
pub fn allreduce_throughput(params: &MachineParams, nodes: usize, ppn: usize, size: usize) -> f64 {
    let tree = world_tree(nodes);
    let size_f = size as f64;
    let t_net = combine_pipeline_time(params, &tree, size_f);
    // Local work: the parallel local math reads every process's input and
    // writes the node buffer, then peers copy the result out.
    let ws = memsys::allreduce_working_set(size_f, ppn);
    let local_bytes = (ppn as f64 + 1.0) * size_f + memsys::fanout_bytes(size_f, ppn);
    let t_local = local_bytes / memsys::copy_bw(params, ws);
    let t = t_net.max(t_local) + params.coll_sw_base + params.allreduce_sw;
    size_f / t
}

/// Figure 9: collective-network `MPI_Bcast` throughput (B/s).
pub fn broadcast_throughput(params: &MachineParams, nodes: usize, ppn: usize, size: usize) -> f64 {
    let tree = world_tree(nodes);
    let size_f = size as f64;
    let t_net = pipeline_time(params, &tree, size_f);
    let ws = memsys::broadcast_working_set(size_f, ppn);
    let t_local = memsys::fanout_bytes(size_f, ppn) / memsys::copy_bw(params, ws);
    let t = t_net.max(t_local) + params.coll_sw_base;
    size_f / t
}

/// Figure 10: the 10-color rectangle broadcast throughput (B/s). Each of
/// the ten edge-disjoint trees streams a tenth of the buffer, so the
/// network term divides by ten (at ~94% protocol efficiency); the
/// intra-node copy term is unchanged and becomes the bottleneck at high
/// PPN.
pub fn rect_broadcast_throughput(
    params: &MachineParams,
    nodes: usize,
    ppn: usize,
    size: usize,
) -> f64 {
    let shape = TorusShape::for_nodes(nodes);
    let rect = Rectangle::full(shape);
    let size_f = size as f64;
    // The slowest color bounds the network term.
    let st = packet_time(params);
    let slice = size_f / 10.0;
    let t_net = (0..10u8)
        .map(|c| {
            let tree = SpanningTree::build(shape, rect, Coords([0; 5]), TreeKind::Colored(c));
            let slices = (slice / MAX_PAYLOAD_BYTES as f64).ceil();
            // 94% protocol efficiency on the aggressive multi-tree path.
            slices * st / 0.94 + tree.max_depth() as f64 * (params.hop_latency + st)
        })
        .fold(0.0f64, f64::max);
    let ws = memsys::broadcast_working_set(size_f, ppn);
    let t_local = memsys::fanout_bytes(size_f, ppn) / memsys::copy_bw(params, ws);
    let t = t_net.max(t_local) + params.coll_sw_base;
    size_f / t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MachineParams {
        MachineParams::default()
    }

    const MB: usize = 1024 * 1024;
    const KB: usize = 1024;

    #[test]
    fn closed_form_matches_des_on_small_trees() {
        let params = p();
        let tree = world_tree(32);
        let size = 64.0 * 1024.0;
        let st = packet_time(&params);
        let slices = (size / MAX_PAYLOAD_BYTES as f64).ceil() as u32;
        let des = tree_sim::pipeline_broadcast(&tree, slices, st, params.hop_latency);
        let closed = pipeline_time(&params, &tree, size);
        assert!(
            (des - closed).abs() / closed < 0.02,
            "DES {des} vs closed form {closed}"
        );
    }

    #[test]
    fn figure6_barrier_latencies() {
        let params = p();
        // Paper: 2.7 / 4.0 / 4.2 µs at ppn 1/4/16 on 2048 nodes.
        let b1 = barrier_latency(&params, 2048, 1);
        let b4 = barrier_latency(&params, 2048, 4);
        let b16 = barrier_latency(&params, 2048, 16);
        assert!((b1 - 2.7e-6).abs() / 2.7e-6 < 0.15, "ppn1 {b1}");
        assert!((b4 - 4.0e-6).abs() / 4.0e-6 < 0.15, "ppn4 {b4}");
        assert!((b16 - 4.2e-6).abs() / 4.2e-6 < 0.15, "ppn16 {b16}");
        assert!(b1 < b4 && b4 < b16);
        // Logarithmic-ish growth in node count.
        assert!(barrier_latency(&params, 32, 1) < b1);
        assert!(b1 / barrier_latency(&params, 32, 1) < 4.0);
    }

    #[test]
    fn figure7_allreduce_latencies() {
        let params = p();
        // Paper: 5.5 / 5.0 / 5.3 µs at ppn 1/4/16 — flat within ~1 µs and
        // a few µs above barrier.
        let a1 = allreduce_latency(&params, 2048, 1);
        let a4 = allreduce_latency(&params, 2048, 4);
        let a16 = allreduce_latency(&params, 2048, 16);
        for (got, want) in [(a1, 5.5e-6), (a4, 5.0e-6), (a16, 5.3e-6)] {
            assert!((got - want).abs() / want < 0.20, "got {got}, want {want}");
        }
        assert!(a1 > barrier_latency(&params, 2048, 1));
        let spread = [a1, a4, a16];
        let max = spread.iter().cloned().fold(f64::MIN, f64::max);
        let min = spread.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 1.5e-6, "latency roughly flat across ppn");
    }

    #[test]
    fn figure8_allreduce_throughput_peaks_and_falloff() {
        let params = p();
        // ppn=1 peaks near 8 MB at ≈95% of 1.8 GB/s.
        let t8 = allreduce_throughput(&params, 2048, 1, 8 * MB);
        assert!(t8 > 0.92 * 1.8e9 * 0.92, "ppn1 8MB {t8}");
        assert!(t8 < 1.8e9);
        // ppn=4 peaks near 2 MB, then falls once spilled.
        let t4_peak = allreduce_throughput(&params, 2048, 4, 2 * MB);
        let t4_spill = allreduce_throughput(&params, 2048, 4, 8 * MB);
        assert!(t4_peak > 0.85 * 1.8e9, "ppn4 2MB {t4_peak}");
        assert!(t4_spill < t4_peak, "spill must reduce throughput");
        // ppn=16 peaks near 512 KB.
        let t16_peak = allreduce_throughput(&params, 2048, 16, 512 * KB);
        let t16_spill = allreduce_throughput(&params, 2048, 16, 4 * MB);
        assert!(t16_peak > 0.80 * 1.8e9, "ppn16 512KB {t16_peak}");
        assert!(t16_spill < 0.6 * t16_peak, "ppn16 falls hard after spill");
        // Small messages are latency-bound (rising curve).
        assert!(allreduce_throughput(&params, 2048, 1, 8 * KB) < 0.5 * t8);
    }

    #[test]
    fn figure9_broadcast_throughput() {
        let params = p();
        // ppn=1: ≈96% of payload peak at 32 MB.
        let t1 = broadcast_throughput(&params, 2048, 1, 32 * MB);
        assert!(t1 > 0.94 * 1.8e9, "ppn1 32MB {t1}");
        // ppn=4 peak near 4 MB stays ≈ network peak.
        let t4 = broadcast_throughput(&params, 2048, 4, 4 * MB);
        assert!(t4 > 0.90 * 1.8e9, "ppn4 4MB {t4}");
        // ppn=16: peak near 1 MB; large sizes drop below the peak.
        let t16_peak = broadcast_throughput(&params, 2048, 16, MB);
        let t16_large = broadcast_throughput(&params, 2048, 16, 16 * MB);
        assert!(t16_peak > 0.90 * 1.8e9, "ppn16 1MB {t16_peak}");
        assert!(t16_large < 0.7 * t16_peak, "ppn16 16MB {t16_large}");
    }

    #[test]
    fn figure10_rect_broadcast() {
        let params = p();
        // ppn=1: ≈16.9 GB/s — close to ten links' worth.
        let t1 = rect_broadcast_throughput(&params, 2048, 1, 32 * MB);
        assert!((t1 - 16.9e9).abs() / 16.9e9 < 0.08, "ppn1 {t1}");
        // Nearly 10× the single-tree broadcast.
        let single = broadcast_throughput(&params, 2048, 1, 32 * MB);
        assert!(t1 / single > 8.5, "ratio {:.2}", t1 / single);
        // ppn=4/16: copy-rate limited, well below ppn=1.
        let t4 = rect_broadcast_throughput(&params, 2048, 4, 4 * MB);
        let t16 = rect_broadcast_throughput(&params, 2048, 16, MB);
        assert!(t4 < t1 && t16 < t4, "copy limits: {t1} {t4} {t16}");
        assert!(t4 > 1.8e9, "still beats a single tree at ppn=4");
    }

    #[test]
    fn latency_grows_with_node_count() {
        let params = p();
        let mut prev = 0.0;
        for nodes in [32usize, 128, 512, 2048] {
            let b = barrier_latency(&params, nodes, 1);
            assert!(b > prev);
            prev = b;
        }
    }
}

#[cfg(test)]
mod projection_tests {
    use super::*;

    /// The paper's introduction projects barrier < 9 µs and allreduce
    /// < 12 µs on 96 racks (96×1024 nodes); the models must land inside.
    #[test]
    fn ninety_six_rack_projection() {
        let p = MachineParams::default();
        let nodes = 96 * 1024;
        for ppn in [1usize, 16] {
            let b = barrier_latency(&p, nodes, ppn);
            let a = allreduce_latency(&p, nodes, ppn);
            assert!(b < 9e-6, "barrier {b} at ppn {ppn}");
            assert!(a < 12e-6, "allreduce {a} at ppn {ppn}");
            assert!(b > barrier_latency(&p, 2048, ppn), "grows with scale");
        }
    }
}
