//! Discrete-event timing models of BG/Q messaging at machine scale.
//!
//! The functional crates (`pami`, `pami-mpi`) run the real software on a
//! simulated node count a laptop can host. The *scale-dependent* results of
//! the paper — 2048-node collective latencies, link-limited throughput
//! curves, message-rate scaling with processes per node — are set by
//! hardware constants (1.8 GB/s payload per link direction, tree depths,
//! L2/DDR copy bandwidth, per-message software costs). This crate models
//! those with the constants the paper states or implies, so every table and
//! figure of the evaluation can be regenerated in shape at full scale:
//!
//! * [`config::MachineParams`] — every constant, documented, adjustable.
//! * [`des`] — a small discrete-event engine used by the tree simulations.
//! * [`tree_sim`] — event-driven propagation of barrier signals, combine
//!   trees, and pipelined slices over real spanning trees from
//!   `bgq-torus`.
//! * [`memsys`] — the L2/DDR working-set model behind the high-PPN
//!   throughput falloffs of Figures 8–10.
//! * [`p2p`] — Table 1/2 latency composition, Table 3 neighbor throughput,
//!   and the Figure 5 message-rate model.
//! * [`coll`] — Figures 6–10: barrier and allreduce latency vs nodes,
//!   allreduce/broadcast throughput vs size, and the 10-color rectangle
//!   broadcast.
//!
//! Absolute agreement with the paper is *calibration*; what the models are
//! built to preserve without tuning is the shape: who wins, where knees
//! fall (L2 spill points, eager/rendezvous crossover, commthread speedup
//! vs PPN), and the scaling exponents.

pub mod coll;
pub mod config;
pub mod des;
pub mod memsys;
pub mod p2p;
pub mod tree_sim;

pub use config::MachineParams;
