//! Point-to-point models: Tables 1–3 and Figure 5.

use bgq_torus::packet::wire_bytes_for;

use crate::config::MachineParams;

// ---------------------------------------------------------------------------
// Tables 1 & 2 — half-round-trip latency composition
// ---------------------------------------------------------------------------

/// Network time of an `len`-byte message over `hops` torus hops.
fn wire_time(params: &MachineParams, len: usize, hops: u32) -> f64 {
    hops as f64 * params.hop_latency + wire_bytes_for(len) as f64 / params.link_raw_bw
}

/// PAMI_Send_immediate half round trip for an `len`-byte message between
/// nearest neighbors (Table 1, row 1: 1.18 µs at 0 B).
pub fn pami_send_immediate_latency(params: &MachineParams, len: usize) -> f64 {
    params.pami_immediate_sw + wire_time(params, len, 1)
}

/// PAMI_Send (queued descriptor) half round trip (Table 1, row 2: 1.32 µs).
pub fn pami_send_latency(params: &MachineParams, len: usize) -> f64 {
    pami_send_immediate_latency(params, len) + params.pami_send_queue_extra
}

/// The Table 2 configuration axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiLatencyConfig {
    /// Classic (global-lock) or thread-optimized library.
    pub thread_optimized: bool,
    /// MPI_THREAD_MULTIPLE (vs SINGLE).
    pub thread_multiple: bool,
    /// Commthreads enabled.
    pub commthreads: bool,
}

/// MPI half-round-trip latency for a 0-byte message (Table 2).
///
/// Composition: the PAMI send path, plus matching/request overheads, plus
/// the locking costs of the chosen configuration. The classic library with
/// commthreads pays the context-lock contention penalty the paper measured
/// as 8.7 µs.
pub fn mpi_latency(params: &MachineParams, cfg: MpiLatencyConfig, len: usize) -> f64 {
    let mut t = pami_send_latency(params, len) + params.mpi_match_overhead;
    if cfg.thread_optimized {
        // Memory-synchronization costs paid at any thread level, plus the
        // receive-queue mutex at MPI_THREAD_MULTIPLE.
        t += params.mpi_threadopt_sync;
        if cfg.thread_multiple {
            t += params.mpi_global_lock * 1.4;
        }
        if cfg.commthreads {
            t += params.threadopt_commthread_extra;
        }
    } else {
        if cfg.thread_multiple {
            t += params.mpi_global_lock;
        }
        if cfg.commthreads {
            t += params.classic_commthread_penalty;
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Table 3 — nearest-neighbor throughput
// ---------------------------------------------------------------------------

/// Bidirectional send+receive throughput (B/s) of one reference process
/// exchanging `size`-byte rendezvous messages with `k` neighbors on `k`
/// distinct links. RDMA moves the data, so each link runs at ~90% of
/// payload peak in both directions and throughput scales with `k`.
pub fn rendezvous_neighbor_throughput(params: &MachineParams, k: usize, _size: usize) -> f64 {
    let per_link = 2.0 * params.link_payload_bw * 0.9;
    k as f64 * per_link
}

/// Eager equivalent: packets land in memory FIFOs and the receiver copies
/// payload out on the CPU, so aggregate throughput flattens at the
/// receiver-processing ceiling (~2× the single-thread copy rate, counting
/// both directions).
pub fn eager_neighbor_throughput(params: &MachineParams, k: usize, size: usize) -> f64 {
    let link_limited = rendezvous_neighbor_throughput(params, k, size);
    let receiver_ceiling = 2.0 * params.core_copy_bw;
    link_limited.min(receiver_ceiling)
}

// ---------------------------------------------------------------------------
// Figure 5 — message rate
// ---------------------------------------------------------------------------

/// Which message-rate series to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateSeries {
    /// The PAMI benchmark: each process floods a peer over its own context.
    Pami,
    /// The modified Sequoia benchmark over the classic MPI library,
    /// receives pre-posted with explicit source ranks.
    Mpi,
    /// Thread-optimized MPI with commthreads, explicit sources.
    MpiCommthreads,
    /// Thread-optimized MPI with commthreads, ANY_SOURCE wildcard receives.
    MpiCommthreadsWildcard,
}

/// Aggregate node message rate (messages/second) at `ppn` processes per
/// node (Figure 5).
pub fn message_rate(params: &MachineParams, series: RateSeries, ppn: usize) -> f64 {
    let per_process = match series {
        RateSeries::Pami => 1.0 / params.pami_msg_cost,
        RateSeries::Mpi => 1.0 / params.mpi_msg_cost,
        RateSeries::MpiCommthreads => {
            params.commthread_speedup(ppn) / params.mpi_threadopt_msg_cost
        }
        RateSeries::MpiCommthreadsWildcard => {
            params.commthread_speedup(ppn) * params.wildcard_penalty
                / params.mpi_threadopt_msg_cost
        }
    };
    (ppn as f64 * per_process).min(params.mu_message_cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MachineParams {
        MachineParams::default()
    }

    #[test]
    fn table1_shape_and_scale() {
        let imm = pami_send_immediate_latency(&p(), 0);
        let send = pami_send_latency(&p(), 0);
        assert!(imm < send, "send-immediate is the faster path");
        // Within 15% of the published 1.18/1.32 µs.
        assert!((imm - 1.18e-6).abs() / 1.18e-6 < 0.15, "imm {imm}");
        assert!((send - 1.32e-6).abs() / 1.32e-6 < 0.15, "send {send}");
    }

    #[test]
    fn table2_ordering_matches_paper() {
        let params = p();
        let classic_single = mpi_latency(
            &params,
            MpiLatencyConfig { thread_optimized: false, thread_multiple: false, commthreads: false },
            0,
        );
        let classic_multiple = mpi_latency(
            &params,
            MpiLatencyConfig { thread_optimized: false, thread_multiple: true, commthreads: false },
            0,
        );
        let classic_commthread = mpi_latency(
            &params,
            MpiLatencyConfig { thread_optimized: false, thread_multiple: true, commthreads: true },
            0,
        );
        let opt_multiple = mpi_latency(
            &params,
            MpiLatencyConfig { thread_optimized: true, thread_multiple: true, commthreads: false },
            0,
        );
        let opt_commthread = mpi_latency(
            &params,
            MpiLatencyConfig { thread_optimized: true, thread_multiple: true, commthreads: true },
            0,
        );
        // Paper: 1.95 < 2.28 < 8.7 (classic) and 2.96 < 3.25 (thread-opt);
        // thread-opt beats classic once commthreads are on.
        assert!(classic_single < classic_multiple);
        assert!(classic_multiple < opt_multiple);
        assert!(opt_multiple < opt_commthread);
        assert!(opt_commthread < classic_commthread);
        assert!(classic_commthread > 7e-6, "contention penalty dominates");
        // MPI always costs more than raw PAMI.
        assert!(classic_single > pami_send_latency(&params, 0));
    }

    #[test]
    fn table3_rendezvous_scales_eager_flattens() {
        let params = p();
        let size = 1 << 20;
        let mut prev_rzv = 0.0;
        for k in [1usize, 2, 4, 10] {
            let rzv = rendezvous_neighbor_throughput(&params, k, size);
            let eager = eager_neighbor_throughput(&params, k, size);
            assert!(rzv > prev_rzv, "rendezvous grows with links");
            assert!(eager <= rzv + 1.0);
            prev_rzv = rzv;
        }
        // 10 links ≈ 32.4 GB/s (paper: 32355 MB/s); eager ceiling ≈ 8.6
        // GB/s (paper: 8467 MB/s).
        let rzv10 = rendezvous_neighbor_throughput(&params, 10, size);
        assert!((rzv10 - 32.4e9).abs() / 32.4e9 < 0.05, "rzv10 {rzv10}");
        let eager10 = eager_neighbor_throughput(&params, 10, size);
        assert!((eager10 - 8.5e9).abs() / 8.5e9 < 0.1, "eager10 {eager10}");
        // At one neighbor the protocols are nearly equal (paper: 3267 vs
        // 3333 MB/s).
        let r1 = rendezvous_neighbor_throughput(&params, 1, size);
        let e1 = eager_neighbor_throughput(&params, 1, size);
        assert!((r1 - e1).abs() / r1 < 0.05);
    }

    #[test]
    fn figure5_shapes() {
        let params = p();
        // PAMI ≫ MPI at every ppn.
        for ppn in [1usize, 2, 4, 8, 16, 32] {
            assert!(
                message_rate(&params, RateSeries::Pami, ppn)
                    > 3.0 * message_rate(&params, RateSeries::Mpi, ppn)
            );
        }
        // Paper endpoints: PAMI ≈ 107 MMPS at ppn=32, MPI ≈ 22.9 MMPS.
        let pami32 = message_rate(&params, RateSeries::Pami, 32);
        assert!((pami32 - 107e6).abs() / 107e6 < 0.15, "pami32 {pami32}");
        let mpi32 = message_rate(&params, RateSeries::Mpi, 32);
        assert!((mpi32 - 22.9e6).abs() / 22.9e6 < 0.15, "mpi32 {mpi32}");
        // Commthread speedup ≈ 2.4× at ppn=1 and shrinks with ppn.
        let s1 = message_rate(&params, RateSeries::MpiCommthreads, 1)
            / message_rate(&params, RateSeries::Mpi, 1);
        assert!(s1 > 1.9 && s1 < 2.6, "speedup at ppn=1: {s1}");
        let s16 = message_rate(&params, RateSeries::MpiCommthreads, 16)
            / message_rate(&params, RateSeries::Mpi, 16);
        assert!(s16 < s1, "speedup shrinks with ppn");
        assert!(s16 > 1.2, "but still helps at ppn=16");
        // Best commthread rate lands near the paper's 18.7 MMPS at ppn=16.
        let best = message_rate(&params, RateSeries::MpiCommthreads, 16);
        assert!((best - 18.7e6).abs() / 18.7e6 < 0.25, "best {best}");
        // Wildcards cost rate.
        assert!(
            message_rate(&params, RateSeries::MpiCommthreadsWildcard, 8)
                < message_rate(&params, RateSeries::MpiCommthreads, 8)
        );
    }
}

// ---------------------------------------------------------------------------
// All-to-all bisection model (the FFT motivation)
// ---------------------------------------------------------------------------

/// Mean minimal hop distance between uniformly random node pairs on
/// `shape` — the quantity that divides a torus's aggregate link capacity
/// among all-to-all traffic.
pub fn average_hops(shape: bgq_torus::TorusShape) -> f64 {
    shape
        .0
        .iter()
        .map(|&e| {
            let e = e as u64;
            let sum: u64 = (0..e).map(|d| d.min(e - d)).sum();
            sum as f64 / e as f64
        })
        .sum()
}

/// Per-node sustainable injection bandwidth (B/s) under uniform all-to-all:
/// each byte consumes `average_hops` link-hops out of the node's ten links'
/// capacity. Higher-dimensional tori of the same node count have fewer
/// average hops, so this grows with dimensionality — the paper's "the 5
/// torus dimensions … boosts the bisection bandwidth … accelerating
/// all-to-all communication such as FFT".
pub fn alltoall_node_bandwidth(params: &MachineParams, shape: bgq_torus::TorusShape) -> f64 {
    let links = bgq_torus::LINKS_PER_NODE as f64;
    let hops = average_hops(shape).max(f64::EPSILON);
    links * params.link_payload_bw / hops
}

#[cfg(test)]
mod alltoall_tests {
    use super::*;
    use bgq_torus::TorusShape;

    #[test]
    fn average_hops_on_rings() {
        // Ring of 4: distances 0,1,2,1 → mean 1.0.
        assert!((average_hops(TorusShape::new([4, 1, 1, 1, 1])) - 1.0).abs() < 1e-12);
        // Ring of 2: distances 0,1 → mean 0.5.
        assert!((average_hops(TorusShape::new([2, 1, 1, 1, 1])) - 0.5).abs() < 1e-12);
        // Dimensions add.
        let two_d = average_hops(TorusShape::new([4, 4, 1, 1, 1]));
        assert!((two_d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn five_dimensions_beat_fewer_for_alltoall() {
        let p = MachineParams::default();
        // 2048 nodes arranged 2D / 3D / 5D: all-to-all bandwidth must grow
        // with dimensionality (fewer average hops).
        let d2 = alltoall_node_bandwidth(&p, TorusShape::new([64, 32, 1, 1, 1]));
        let d3 = alltoall_node_bandwidth(&p, TorusShape::new([16, 16, 8, 1, 1]));
        let d5 = alltoall_node_bandwidth(&p, TorusShape::new([8, 4, 4, 4, 4]));
        assert!(d2 < d3 && d3 < d5, "{d2} {d3} {d5}");
        assert!(d5 / d2 > 3.0, "5D should be several times better than 2D");
    }
}
