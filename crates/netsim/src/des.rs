//! A minimal discrete-event simulation core.
//!
//! Entities schedule [`Event`]s at absolute times; the engine pops them in
//! time order and hands them to the model's handler, which may schedule
//! more. Time is `f64` seconds. The tree simulations ([`crate::tree_sim`])
//! are built on this engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at `time` carrying a model-defined payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<T> {
    /// Absolute simulation time (seconds).
    pub time: f64,
    /// Tie-break sequence (FIFO among simultaneous events).
    pub seq: u64,
    /// Model payload.
    pub payload: T,
}

impl<T: PartialEq> Eq for Event<T> {}

impl<T: PartialEq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq) through reversal.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event engine.
pub struct Engine<T> {
    heap: BinaryHeap<Event<T>>,
    now: f64,
    seq: u64,
    processed: u64,
}

impl<T: PartialEq> Default for Engine<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PartialEq> Engine<T> {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Engine { heap: BinaryHeap::new(), now: 0.0, seq: 0, processed: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `payload` at absolute time `time` (must not precede `now`).
    pub fn schedule(&mut self, time: f64, payload: T) {
        debug_assert!(time >= self.now - 1e-15, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, payload });
    }

    /// Schedule `payload` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        debug_assert!(delay >= 0.0);
        let time = self.now + delay;
        self.schedule(time, payload);
    }

    /// Pop the next event, advancing time.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self re-entrancy with run()
    pub fn next(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        self.processed += 1;
        Some(ev)
    }

    /// Pop the next event only if it is due at or before `limit`, advancing
    /// time to it. `None` leaves the engine (and its clock) untouched — the
    /// co-simulation pump, which drains events up to a shared virtual "now"
    /// without ever running ahead of it.
    pub fn next_due(&mut self, limit: f64) -> Option<Event<T>> {
        if self.heap.peek()?.time > limit {
            return None;
        }
        self.next()
    }

    /// The time of the earliest pending event, if any (does not advance).
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// Run `handler` until no events remain; returns the final time.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<T>, Event<T>)) -> f64 {
        while let Some(ev) = self.next() {
            handler(self, ev);
        }
        self.now
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// `run` needs to pass `self` to the handler while popping; do it with a
// manual loop instead of borrowing self twice.
impl<T: PartialEq + Clone> Engine<T> {
    /// Like [`Engine::run`] but the handler receives a scheduling callback
    /// (avoids the double borrow for handlers that capture state).
    pub fn drive(&mut self, mut handler: impl FnMut(f64, T, &mut Vec<(f64, T)>)) -> f64 {
        let mut out: Vec<(f64, T)> = Vec::new();
        while let Some(ev) = self.next() {
            out.clear();
            handler(ev.time, ev.payload, &mut out);
            for (t, p) in out.drain(..) {
                self.schedule(t, p);
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(3.0, 3);
        e.schedule(1.0, 1);
        e.schedule(2.0, 2);
        assert_eq!(e.next().unwrap().payload, 1);
        assert_eq!(e.next().unwrap().payload, 2);
        assert_eq!(e.next().unwrap().payload, 3);
        assert!(e.next().is_none());
        assert_eq!(e.now(), 3.0);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(1.0, 10);
        e.schedule(1.0, 11);
        e.schedule(1.0, 12);
        assert_eq!(e.next().unwrap().payload, 10);
        assert_eq!(e.next().unwrap().payload, 11);
        assert_eq!(e.next().unwrap().payload, 12);
    }

    #[test]
    fn drive_cascades_events() {
        // A chain: each event schedules the next until 5.
        let mut e: Engine<u32> = Engine::new();
        e.schedule(0.0, 0);
        let end = e.drive(|t, n, out| {
            if n < 5 {
                out.push((t + 1.0, n + 1));
            }
        });
        assert_eq!(end, 5.0);
        assert_eq!(e.processed(), 6);
    }

    #[test]
    fn next_due_respects_the_limit() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(1.0, 1);
        e.schedule(2.0, 2);
        assert_eq!(e.peek_time(), Some(1.0));
        assert_eq!(e.next_due(0.5), None);
        assert_eq!(e.now(), 0.0, "a declined pop must not advance time");
        assert_eq!(e.next_due(1.0).unwrap().payload, 1);
        assert_eq!(e.now(), 1.0);
        assert_eq!(e.next_due(1.5), None);
        assert_eq!(e.next_due(10.0).unwrap().payload, 2);
        assert_eq!(e.next_due(10.0), None, "empty engine yields nothing");
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut e: Engine<&'static str> = Engine::new();
        e.schedule(2.0, "a");
        e.next();
        e.schedule_in(0.5, "b");
        let ev = e.next().unwrap();
        assert_eq!(ev.payload, "b");
        assert!((ev.time - 2.5).abs() < 1e-12);
    }
}
