//! Event-driven propagation over spanning trees.
//!
//! Three tree traversals cover the collective models:
//!
//! * [`signal_round_trip`] — a GI barrier: signals combine *up* the tree
//!   (each node fires once all children have) and a release broadcasts
//!   *down*; the result is the wall time of the full round trip.
//! * [`pipeline_broadcast`] — a payload striped into slices streams down
//!   the tree, store-and-forward per slice with hardware multicast to all
//!   children (the classroute/collective-network behaviour).
//! * [`pipeline_combine_broadcast`] — allreduce: slices combine up the tree
//!   and broadcast back down, pipelined.
//!
//! These run on the [`crate::des`] engine over real [`SpanningTree`]s, so
//! irregular shapes (deep 2×…, shallow 8×8×…) are timed faithfully.

use bgq_torus::{Coords, SpanningTree};

use crate::des::Engine;

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// Up-phase: a node's subtree is complete.
    UpReady(u32),
    /// Down-phase: release/slice arrival at a node.
    Down(u32, u32),
}

fn index_of(tree: &SpanningTree, c: Coords) -> u32 {
    tree.rect().member_index(c) as u32
}

/// Simulate an up-then-down signal round trip (the GI barrier): returns the
/// time from all leaves firing at t=0 to the last node receiving the
/// release. `hop` is the per-hop propagation latency.
pub fn signal_round_trip(tree: &SpanningTree, hop: f64) -> f64 {
    let n = tree.num_nodes();
    let mut missing: Vec<usize> = vec![0; n];
    let mut parent: Vec<Option<u32>> = vec![None; n];
    for c in tree.bfs_order() {
        let i = index_of(tree, c) as usize;
        missing[i] = tree.children_of(c).len();
        parent[i] = tree.parent_of(c).map(|p| index_of(tree, p));
    }
    let children: Vec<Vec<u32>> = tree
        .bfs_order()
        .iter()
        .map(|c| tree.children_of(*c).iter().map(|ch| index_of(tree, *ch)).collect())
        .collect();
    // bfs_order() is root-first but indices are member indices; build a
    // member-indexed children table.
    let mut child_table: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (c, kids) in tree.bfs_order().into_iter().zip(children) {
        child_table[index_of(tree, c) as usize] = kids;
    }

    let mut engine: Engine<Ev> = Engine::new();
    // Leaves are up-ready immediately.
    for c in tree.bfs_order() {
        let i = index_of(tree, c) as usize;
        if missing[i] == 0 {
            engine.schedule(0.0, Ev::UpReady(i as u32));
        }
    }
    let root = index_of(tree, tree.root());
    let mut last_down: f64 = 0.0;
    engine.drive(|t, ev, out| match ev {
        Ev::UpReady(i) => {
            if i == root {
                out.push((t, Ev::Down(i, 0)));
            } else if let Some(p) = parent[i as usize] {
                missing[p as usize] -= 1;
                if missing[p as usize] == 0 {
                    out.push((t + hop, Ev::UpReady(p)));
                }
            }
        }
        Ev::Down(i, _) => {
            last_down = last_down.max(t);
            for &ch in &child_table[i as usize] {
                out.push((t + hop, Ev::Down(ch, 0)));
            }
        }
    });
    last_down
}

/// Simulate a broadcast of `slices` back-to-back slices (each taking
/// `slice_time` seconds of link occupancy) streaming down the tree with
/// per-hop latency `hop` and hardware multicast to children. Returns the
/// time at which the last node holds the last slice.
pub fn pipeline_broadcast(tree: &SpanningTree, slices: u32, slice_time: f64, hop: f64) -> f64 {
    if slices == 0 {
        return 0.0;
    }
    let n = tree.num_nodes();
    let mut child_table: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in tree.bfs_order() {
        child_table[index_of(tree, c) as usize] =
            tree.children_of(c).iter().map(|ch| index_of(tree, *ch)).collect();
    }
    let root = index_of(tree, tree.root());
    let mut engine: Engine<Ev> = Engine::new();
    for s in 0..slices {
        // The root injects slice s after the previous slice has been
        // serialized onto its links.
        engine.schedule((s + 1) as f64 * slice_time, Ev::Down(root, s));
    }
    let mut finish: f64 = 0.0;
    engine.drive(|t, ev, out| {
        if let Ev::Down(i, s) = ev {
            finish = finish.max(t);
            for &ch in &child_table[i as usize] {
                // Store-and-forward: a child holds the slice one hop plus
                // one slice serialization later.
                out.push((t + hop + slice_time, Ev::Down(ch, s)));
            }
        }
    });
    finish
}

/// Simulate a pipelined allreduce: slices combine up the tree (a parent
/// needs all children's slice s before forwarding it) and the results
/// broadcast back down. Returns the completion time of the last slice at
/// the last node.
pub fn pipeline_combine_broadcast(
    tree: &SpanningTree,
    slices: u32,
    slice_time: f64,
    hop: f64,
) -> f64 {
    if slices == 0 {
        return 0.0;
    }
    let n = tree.num_nodes();
    let mut parent: Vec<Option<u32>> = vec![None; n];
    let mut child_table: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in tree.bfs_order() {
        let i = index_of(tree, c) as usize;
        parent[i] = tree.parent_of(c).map(|p| index_of(tree, p));
        child_table[i] = tree.children_of(c).iter().map(|ch| index_of(tree, *ch)).collect();
    }
    let root = index_of(tree, tree.root());
    // missing[i][s] contributions outstanding for slice s at node i.
    let mut missing: Vec<Vec<usize>> = (0..n)
        .map(|i| vec![child_table[i].len(); slices as usize])
        .collect();

    #[derive(Debug, Clone, PartialEq)]
    enum ArEv {
        Up(u32, u32),
        Down(u32, u32),
    }

    let mut engine: Engine<ArEv> = Engine::new();
    // Every node's own contribution of slice s is ready after it has read/
    // packed s slices locally (serialized injection).
    for i in 0..n as u32 {
        for s in 0..slices {
            if missing[i as usize][s as usize] == 0 {
                engine.schedule((s + 1) as f64 * slice_time, ArEv::Up(i, s));
            }
        }
    }
    let mut finish: f64 = 0.0;
    engine.drive(|t, ev, out| match ev {
        ArEv::Up(i, s) => {
            if i == root {
                out.push((t, ArEv::Down(i, s)));
            } else if let Some(p) = parent[i as usize] {
                let m = &mut missing[p as usize][s as usize];
                *m = m.saturating_sub(1);
                if *m == 0 {
                    // Parent had its own contribution ready by construction
                    // (local readiness is the (s+1)·slice_time floor, which
                    // the child path already exceeds).
                    out.push((t + hop + slice_time, ArEv::Up(p, s)));
                }
            }
        }
        ArEv::Down(i, s) => {
            finish = finish.max(t);
            for &ch in &child_table[i as usize] {
                out.push((t + hop + slice_time, ArEv::Down(ch, s)));
            }
        }
    });
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::{Rectangle, TorusShape, TreeKind, ALL_DIMS};

    fn line_tree(len: u16) -> (TorusShape, SpanningTree) {
        let shape = TorusShape::new([len, 1, 1, 1, 1]);
        let rect = Rectangle::full(shape);
        let tree = SpanningTree::build(shape, rect, Coords([0; 5]), TreeKind::DimOrdered(ALL_DIMS));
        (shape, tree)
    }

    #[test]
    fn signal_round_trip_on_a_line() {
        // A line of 5 from the end node: depth 4 up + 4 down = 8 hops.
        let (_s, tree) = line_tree(5);
        let t = signal_round_trip(&tree, 10e-9);
        assert!((t - 8.0 * 10e-9).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn signal_round_trip_single_node_is_free() {
        let (_s, tree) = line_tree(1);
        assert_eq!(signal_round_trip(&tree, 10e-9), 0.0);
    }

    #[test]
    fn broadcast_pipeline_latency_and_bandwidth_terms() {
        let (_s, tree) = line_tree(4);
        // Line of 4, root at 0, max depth 2 (bidirectional chain 0→1→2 and
        // 0→3? No: bidirectional within box: 1,2,3 all > 0 so chain 0→1→2→3,
        // depth 3.
        let hop = 5e-9;
        let st = 1e-6;
        let t = pipeline_broadcast(&tree, 10, st, hop);
        // Last slice leaves root at 10·st; traverses 3 hops, each adding
        // hop + st.
        let expect = 10.0 * st + 3.0 * (hop + st);
        assert!((t - expect).abs() < 1e-12, "got {t}, want {expect}");
    }

    #[test]
    fn combine_broadcast_exceeds_broadcast() {
        let shape = TorusShape::new([4, 4, 2, 1, 1]);
        let rect = Rectangle::full(shape);
        let tree = SpanningTree::build(shape, rect, Coords([0; 5]), TreeKind::DimOrdered(ALL_DIMS));
        let b = pipeline_broadcast(&tree, 8, 1e-6, 40e-9);
        let ar = pipeline_combine_broadcast(&tree, 8, 1e-6, 40e-9);
        assert!(ar > b, "allreduce {ar} must cost more than broadcast {b}");
    }

    #[test]
    fn deeper_trees_take_longer() {
        let (_s, t8) = line_tree(8);
        let (_s, t16) = line_tree(16);
        let a = signal_round_trip(&t8, 10e-9);
        let b = signal_round_trip(&t16, 10e-9);
        assert!(b > a);
    }

    #[test]
    fn more_slices_scale_bandwidth_term_linearly() {
        let (_s, tree) = line_tree(4);
        let t1 = pipeline_broadcast(&tree, 10, 1e-6, 0.0);
        let t2 = pipeline_broadcast(&tree, 20, 1e-6, 0.0);
        // Doubling slices adds exactly 10 slice times.
        assert!((t2 - t1 - 10.0 * 1e-6).abs() < 1e-12);
    }
}
