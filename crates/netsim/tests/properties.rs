//! Property-based checks of the timing models: monotonicity and physical
//! bounds must hold for *any* configuration, not just the paper's points.

use bgq_netsim::{coll, p2p, MachineParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Latency models grow (weakly) with node count and PPN and are always
    /// positive.
    #[test]
    fn latency_monotone_in_scale(exp in 3u32..11, ppn_idx in 0usize..3) {
        let p = MachineParams::default();
        let ppn = [1usize, 4, 16][ppn_idx];
        let nodes = 1usize << exp;
        let b = coll::barrier_latency(&p, nodes, ppn);
        let b2 = coll::barrier_latency(&p, nodes * 2, ppn);
        prop_assert!(b > 0.0 && b2 >= b);
        let a = coll::allreduce_latency(&p, nodes, ppn);
        prop_assert!(a > b, "allreduce beats barrier?");
        prop_assert!(coll::barrier_latency(&p, nodes, 16) >= coll::barrier_latency(&p, nodes, 1));
    }

    /// Throughput models are positive, bounded by hardware, and weakly
    /// increasing in message size until the working-set knee.
    #[test]
    fn throughput_bounded_by_links(exp in 10u32..25, ppn_idx in 0usize..3) {
        let p = MachineParams::default();
        let ppn = [1usize, 4, 16][ppn_idx];
        let size = 1usize << exp;
        let ar = coll::allreduce_throughput(&p, 2048, ppn, size);
        let bc = coll::broadcast_throughput(&p, 2048, ppn, size);
        let rc = coll::rect_broadcast_throughput(&p, 2048, ppn, size);
        prop_assert!(ar > 0.0 && ar <= p.link_payload_bw);
        prop_assert!(bc > 0.0 && bc <= p.link_payload_bw);
        prop_assert!(rc > 0.0 && rc <= 10.0 * p.link_payload_bw);
        // The striped broadcast never loses to the single tree.
        prop_assert!(rc >= 0.9 * bc);
    }

    /// Message-rate model: PAMI dominates MPI at every PPN; adding
    /// commthreads never hurts the thread-optimized rate by more than the
    /// coordination overhead; rates scale with PPN until the MU cap.
    #[test]
    fn message_rate_orderings(ppn_exp in 0u32..6) {
        let p = MachineParams::default();
        let ppn = 1usize << ppn_exp;
        let pami = p2p::message_rate(&p, p2p::RateSeries::Pami, ppn);
        let mpi = p2p::message_rate(&p, p2p::RateSeries::Mpi, ppn);
        let ct = p2p::message_rate(&p, p2p::RateSeries::MpiCommthreads, ppn);
        let wild = p2p::message_rate(&p, p2p::RateSeries::MpiCommthreadsWildcard, ppn);
        prop_assert!(pami > mpi);
        prop_assert!(ct > mpi, "commthreads help the rate");
        prop_assert!(wild < ct, "wildcards cost rate");
        prop_assert!(pami <= p.mu_message_cap);
    }

    /// Table 1/2 latency compositions are positive, finite, and ordered
    /// for any message size up to the eager range.
    #[test]
    fn latency_composition_sane(len in 0usize..4096) {
        let p = MachineParams::default();
        let imm = p2p::pami_send_immediate_latency(&p, len);
        let send = p2p::pami_send_latency(&p, len);
        prop_assert!(imm.is_finite() && imm > 0.0);
        prop_assert!(send > imm);
        let mpi = p2p::mpi_latency(
            &p,
            p2p::MpiLatencyConfig { thread_optimized: false, thread_multiple: false, commthreads: false },
            len,
        );
        prop_assert!(mpi > send);
        // Larger payloads never reduce latency.
        let bigger = p2p::pami_send_latency(&p, len + 512);
        prop_assert!(bigger >= send);
    }

    /// All-to-all bandwidth grows with torus dimensionality for a fixed
    /// node count (power-of-two shapes).
    #[test]
    fn alltoall_prefers_dimensions(split in 0u32..4) {
        let p = MachineParams::default();
        // 256 nodes split over 1+split dimensions vs all five.
        let mut flat = [1u16; 5];
        let per = 256f64.powf(1.0 / (1 + split) as f64).round() as u16;
        let mut rem = 256usize;
        for slot in flat.iter_mut().take(split as usize + 1) {
            let take = per.min(rem as u16).max(1);
            *slot = take;
            rem /= take as usize;
        }
        flat[0] = (flat[0] as usize * rem.max(1)) as u16;
        let lowdim = bgq_torus::TorusShape::new(flat);
        let fivedim = bgq_torus::TorusShape::new([4, 4, 4, 2, 2]);
        prop_assume!(lowdim.num_nodes() == 256);
        let low = p2p::alltoall_node_bandwidth(&p, lowdim);
        let five = p2p::alltoall_node_bandwidth(&p, fivedim);
        prop_assert!(five >= low * 0.99, "5D {five} vs {}D {low}", split + 1);
    }
}
