//! Property-based tests of the collective combine semantics.

use bgq_collnet::ops::{combine, elems, identity, CollOp, DataType};
use proptest::prelude::*;

fn int_ops() -> impl Strategy<Value = CollOp> {
    prop_oneof![
        Just(CollOp::Sum),
        Just(CollOp::Min),
        Just(CollOp::Max),
        Just(CollOp::BitAnd),
        Just(CollOp::BitOr),
        Just(CollOp::BitXor),
    ]
}

fn fp_ops() -> impl Strategy<Value = CollOp> {
    prop_oneof![Just(CollOp::Sum), Just(CollOp::Min), Just(CollOp::Max)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Integer combines are commutative: fold order across contributors
    /// cannot matter, because arrival order at a router is arbitrary.
    #[test]
    fn integer_combine_commutes(op in int_ops(), a in proptest::collection::vec(any::<i64>(), 1..16)) {
        let b: Vec<i64> = a.iter().rev().map(|x| x.wrapping_mul(31)).collect();
        let mut ab = elems::from_i64(&a);
        combine(op, DataType::Int64, &mut ab, &elems::from_i64(&b));
        let mut ba = elems::from_i64(&b);
        combine(op, DataType::Int64, &mut ba, &elems::from_i64(&a));
        prop_assert_eq!(ab, ba);
    }

    /// Integer combines are associative.
    #[test]
    fn integer_combine_associates(
        op in int_ops(),
        a in any::<i64>(),
        b in any::<i64>(),
        c in any::<i64>(),
    ) {
        // (a∘b)∘c
        let mut left = elems::from_i64(&[a]);
        combine(op, DataType::Int64, &mut left, &elems::from_i64(&[b]));
        combine(op, DataType::Int64, &mut left, &elems::from_i64(&[c]));
        // a∘(b∘c)
        let mut right = elems::from_i64(&[b]);
        combine(op, DataType::Int64, &mut right, &elems::from_i64(&[c]));
        let mut right2 = elems::from_i64(&[a]);
        combine(op, DataType::Int64, &mut right2, &right);
        prop_assert_eq!(left, right2);
    }

    /// Identity elements are neutral for every op/type pair.
    #[test]
    fn identities_neutral(op in int_ops(), v in any::<i64>()) {
        let mut acc = identity(op, DataType::Int64).to_vec();
        combine(op, DataType::Int64, &mut acc, &elems::from_i64(&[v]));
        prop_assert_eq!(elems::to_i64(&acc), vec![v]);
    }

    /// Float min/max match the scalar semantics elementwise; sum matches
    /// within exact equality for the same association order.
    #[test]
    fn float_combine_matches_scalar(op in fp_ops(), a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let mut acc = elems::from_f64(&[a]);
        combine(op, DataType::Float64, &mut acc, &elems::from_f64(&[b]));
        let got = elems::to_f64(&acc)[0];
        let want = match op {
            CollOp::Sum => a + b,
            CollOp::Min => a.min(b),
            CollOp::Max => a.max(b),
            _ => unreachable!(),
        };
        prop_assert_eq!(got, want);
    }

    /// A reduction over N contributions equals the scalar fold, any length.
    #[test]
    fn reduction_equals_fold(
        op in int_ops(),
        contribs in proptest::collection::vec(proptest::collection::vec(any::<i64>(), 4), 1..10),
    ) {
        let mut acc = vec![identity(op, DataType::Int64); 4]
            .into_iter()
            .flatten()
            .collect::<Vec<u8>>();
        for c in &contribs {
            combine(op, DataType::Int64, &mut acc, &elems::from_i64(c));
        }
        let got = elems::to_i64(&acc);
        for lane in 0..4 {
            let mut want = i64::from_le_bytes(identity(op, DataType::Int64));
            for c in &contribs {
                want = match op {
                    CollOp::Sum => want.wrapping_add(c[lane]),
                    CollOp::Min => want.min(c[lane]),
                    CollOp::Max => want.max(c[lane]),
                    CollOp::BitAnd => want & c[lane],
                    CollOp::BitOr => want | c[lane],
                    CollOp::BitXor => want ^ c[lane],
                };
            }
            prop_assert_eq!(got[lane], want, "lane {}", lane);
        }
    }
}
