//! The global-interrupt (GI) barrier network.
//!
//! BG/Q folds the global-interrupt network into the same torus links; it
//! propagates single-bit signals over a classroute in a few hundred
//! nanoseconds per hop, giving whole-machine barriers in ~1 µs of network
//! time. PAMI's `MPI_Barrier` uses it for the inter-node step ("we use the
//! fast L2 atomics and the global interrupt network to provide very
//! low-overhead barrier across the entire machine").
//!
//! [`GiBarrier`] is the functional stand-in: a generation-counted barrier
//! across the member *nodes* of a classroute. `arrive` is non-blocking (it
//! returns a [`GiPhase`] token) so a context can keep advancing while it
//! waits — exactly how the MPI layer drives it.

use std::sync::Arc;

use bgq_hw::WakeupRegion;
use parking_lot::Mutex;

/// Token returned by [`GiBarrier::arrive`]; pass to
/// [`GiBarrier::is_released`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GiPhase(u64);

struct GiState {
    arrived: usize,
    generation: u64,
    wakeups: Vec<WakeupRegion>,
}

/// A barrier across the nodes of one classroute.
#[derive(Clone)]
pub struct GiBarrier {
    members: usize,
    state: Arc<Mutex<GiState>>,
}

impl GiBarrier {
    /// A barrier over `members` nodes.
    ///
    /// # Panics
    /// If `members == 0`.
    pub fn new(members: usize) -> Self {
        assert!(members > 0, "a barrier needs at least one member");
        GiBarrier {
            members,
            state: Arc::new(Mutex::new(GiState {
                arrived: 0,
                generation: 0,
                wakeups: Vec::new(),
            })),
        }
    }

    /// Member count.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Register a wakeup region to be touched on every release.
    pub fn add_wakeup(&self, region: WakeupRegion) {
        self.state.lock().wakeups.push(region);
    }

    /// Signal this node's arrival; returns the phase to poll. The caller
    /// that completes the barrier releases everyone (and touches registered
    /// wakeup regions).
    pub fn arrive(&self) -> GiPhase {
        let mut s = self.state.lock();
        let phase = GiPhase(s.generation);
        s.arrived += 1;
        if s.arrived == self.members {
            s.arrived = 0;
            s.generation += 1;
            for w in &s.wakeups {
                w.touch();
            }
        }
        phase
    }

    /// Whether the barrier generation `phase` belongs to has been released.
    pub fn is_released(&self, phase: GiPhase) -> bool {
        self.state.lock().generation > phase.0
    }

    /// Arrive and spin until release (helper for drivers without their own
    /// progress loop).
    pub fn arrive_and_wait(&self) {
        let phase = self.arrive();
        while !self.is_released(phase) {
            // Yield rather than pure-spin: single-core hosts must let the
            // other members run.
            std::thread::yield_now();
        }
    }

    /// Completed barrier generations so far.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_member_releases_immediately() {
        let b = GiBarrier::new(1);
        let p = b.arrive();
        assert!(b.is_released(p));
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn release_requires_all_members() {
        let b = GiBarrier::new(3);
        let p1 = b.arrive();
        let p2 = b.arrive();
        assert!(!b.is_released(p1));
        assert!(!b.is_released(p2));
        let p3 = b.arrive();
        assert!(b.is_released(p1) && b.is_released(p2) && b.is_released(p3));
    }

    #[test]
    fn generations_do_not_bleed() {
        let b = GiBarrier::new(2);
        b.arrive();
        b.arrive(); // generation 1 released
        let p = b.arrive(); // arrival for generation 2
        assert!(!b.is_released(p), "next generation needs fresh arrivals");
        b.arrive();
        assert!(b.is_released(p));
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn wakeups_touched_on_release() {
        let unit = bgq_hw::WakeupUnit::new();
        let region = unit.region();
        let b = GiBarrier::new(2);
        b.add_wakeup(region.clone());
        b.arrive();
        assert_eq!(region.epoch(), 0);
        b.arrive();
        assert_eq!(region.epoch(), 1);
    }

    #[test]
    fn many_threads_many_rounds() {
        const MEMBERS: usize = 8;
        const ROUNDS: usize = 200;
        let b = GiBarrier::new(MEMBERS);
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..MEMBERS {
                let b = b.clone();
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for r in 0..ROUNDS as u64 {
                        b.arrive_and_wait();
                        // After release of round r, the generation is at
                        // least r+1 — a member can never observe an older
                        // one.
                        assert!(b.generation() > r);
                        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), (MEMBERS * ROUNDS) as u64);
        assert_eq!(b.generation(), ROUNDS as u64);
    }
}
