//! The Blue Gene/Q collective network and global-interrupt barrier.
//!
//! Unlike BG/L and BG/P, the BG/Q collective network is *embedded in the 5D
//! torus*: programming a **classroute** tells each router which down-tree
//! links feed its combine logic and which up-tree link carries the result,
//! giving hardware barrier / broadcast / reduce / allreduce over
//! `MPI_COMM_WORLD` and over contiguous rectangular sub-communicators. The
//! collectives are RDMA-capable — operand data is read from and results
//! written to memory directly (paper sections II.B and III.D).
//!
//! This crate reproduces those facilities functionally:
//!
//! * [`ops`] — the combine operations the routers implement (integer and
//!   floating-point add/min/max, plus bitwise ops).
//! * [`classroute`] — classroute allocation against the 16-routes-per-node
//!   hardware limit (minus system-reserved routes): the scarcity that forces
//!   PAMI's optimize/deoptimize scheme.
//! * [`combiner`] — the collective engine: every participating node
//!   contributes its operand slice; the network combines and RDMA-writes
//!   the result into each node's destination buffer, decrementing its
//!   reception counter.
//! * [`gi`] — the global-interrupt barrier: a few-microsecond,
//!   zero-payload synchronization across a classroute.

pub mod classroute;
pub mod combiner;
pub mod gi;
pub mod ops;

pub use classroute::{ClassRoute, ClassRouteError, ClassRouteId, ClassRouteManager,
    NUM_CLASSROUTES, SYSTEM_RESERVED_ROUTES};
pub use combiner::{CollContribution, CollNet, CollOutput};
pub use gi::{GiBarrier, GiPhase};
pub use ops::{combine, CollOp, DataType, ELEM_BYTES};
