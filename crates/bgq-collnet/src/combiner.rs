//! The collective combine engine.
//!
//! Functionally, a collective-network operation over a classroute is: every
//! member node contributes an operand (or, for broadcast, the root
//! contributes data and the rest contribute nothing); the routers combine
//! contributions up the tree; the result streams back down and is
//! RDMA-written into each member's destination buffer, decrementing its
//! reception counter. The paper's collectives are "RDMA capable and the
//! data that is being operated upon is directly read from or written to the
//! memory" — no reception-FIFO traffic, no extra copies.
//!
//! [`CollNet`] reproduces exactly that contract. Contributions on the same
//! classroute are matched by arrival order per node (hardware serializes
//! collective ops per route the same way); the last contribution performs
//! the combine-completion: writing results and firing counters/wakeups.
//! Long operations are pipelined by issuing one contribution per slice,
//! which is literally what PAMI's long-allreduce does (Figure 4).

use std::collections::HashMap;

use bgq_hw::{Counter, L2Counter, MemRegion, WakeupRegion};
use bgq_torus::Coords;
use parking_lot::Mutex;

use crate::classroute::ClassRoute;
use crate::ops::{combine, CollOp, DataType};

/// Where one member wants a result delivered.
#[derive(Clone)]
pub struct CollOutput {
    /// Destination region (RDMA write target).
    pub region: MemRegion,
    /// Byte offset within the region.
    pub offset: usize,
    /// Reception counter decremented by the result length (by 1 for
    /// barriers).
    pub counter: Option<Counter>,
    /// Wakeup region touched on delivery (parked commthreads resume).
    pub wakeup: Option<WakeupRegion>,
}

impl CollOutput {
    /// An output with no counter or wakeup (tests, simple callers).
    pub fn plain(region: MemRegion, offset: usize) -> Self {
        CollOutput { region, offset, counter: None, wakeup: None }
    }

    fn complete(&self, data: Option<&[u8]>, credit: u64) {
        if let Some(d) = data {
            self.region.write(self.offset, d);
        }
        if let Some(c) = &self.counter {
            c.delivered(credit);
        }
        if let Some(w) = &self.wakeup {
            w.touch();
        }
    }
}

/// One member node's contribution to a collective operation.
pub enum CollContribution {
    /// Allreduce: contribute `data`, receive the combined result.
    Allreduce {
        /// Combine operation.
        op: CollOp,
        /// Element type.
        dtype: DataType,
        /// This node's operand.
        data: Vec<u8>,
        /// Where the result lands on this node.
        output: CollOutput,
    },
    /// Reduce: contribute `data`; only the root passes an output.
    Reduce {
        /// Combine operation.
        op: CollOp,
        /// Element type.
        dtype: DataType,
        /// This node's operand.
        data: Vec<u8>,
        /// Result destination (root only).
        output: Option<CollOutput>,
    },
    /// Broadcast: the root contributes `Some(data)`; everyone receiving
    /// passes an output.
    Broadcast {
        /// Payload (root only).
        data: Option<Vec<u8>>,
        /// Payload length (every member must agree).
        len: usize,
        /// Destination (members other than the root; the root may also
        /// receive into place).
        output: Option<CollOutput>,
    },
    /// Barrier: no payload; the output counter (if any) is decremented by 1
    /// at release.
    Barrier {
        /// Completion signal.
        output: Option<CollOutput>,
    },
}

impl CollContribution {
    fn signature(&self) -> OpSignature {
        match self {
            CollContribution::Allreduce { op, dtype, data, .. } => {
                OpSignature::Allreduce(*op, *dtype, data.len())
            }
            CollContribution::Reduce { op, dtype, data, .. } => {
                OpSignature::Reduce(*op, *dtype, data.len())
            }
            CollContribution::Broadcast { len, .. } => OpSignature::Broadcast(*len),
            CollContribution::Barrier { .. } => OpSignature::Barrier,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpSignature {
    Allreduce(CollOp, DataType, usize),
    Reduce(CollOp, DataType, usize),
    Broadcast(usize),
    Barrier,
}

struct OpState {
    signature: OpSignature,
    expected: usize,
    received: usize,
    /// Running combine (allreduce/reduce) or broadcast payload.
    acc: Option<Vec<u8>>,
    outputs: Vec<CollOutput>,
}

/// The collective network engine for one partition.
///
/// Shared (via clone) by every node driver; one instance per
/// [`crate::classroute::ClassRouteManager`] is typical.
#[derive(Clone, Default)]
pub struct CollNet {
    inner: std::sync::Arc<CollNetInner>,
}

#[derive(Default)]
struct CollNetInner {
    /// In-flight operations keyed by (route id, sequence).
    ops: Mutex<HashMap<(u8, u64), OpState>>,
    /// Next sequence per (route id, member node index within rect).
    seqs: Mutex<HashMap<(u8, usize), u64>>,
    completed: L2Counter,
}

impl CollNet {
    /// A fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Operations fully completed so far (diagnostics).
    pub fn completed_ops(&self) -> u64 {
        self.inner.completed.load()
    }

    /// Contribute `node`'s part of the next collective on `route`.
    ///
    /// Calls on one node are matched to calls on the other members in
    /// per-node program order, like the hardware serializes a route. The
    /// contribution completes immediately if this is the last arrival;
    /// completion is observed through the members' counters/wakeups.
    ///
    /// Returns the operation sequence number (diagnostics).
    ///
    /// # Panics
    /// If `node` is not a member of the route's rectangle, or members
    /// disagree on the operation (different kind/op/length), or a broadcast
    /// has no root payload by the time all members arrived.
    pub fn contribute(&self, route: &ClassRoute, node: Coords, input: CollContribution) -> u64 {
        assert!(
            route.rect.contains(node),
            "node {node} is not a member of classroute {:?}",
            route.id
        );
        let member = route.rect.member_index(node);
        let seq = {
            let mut seqs = self.inner.seqs.lock();
            let s = seqs.entry((route.id.0, member)).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        let signature = input.signature();
        let key = (route.id.0, seq);

        let mut ops = self.inner.ops.lock();
        let state = ops.entry(key).or_insert_with(|| OpState {
            signature,
            expected: route.rect.num_nodes(),
            received: 0,
            acc: None,
            outputs: Vec::new(),
        });
        assert_eq!(
            state.signature, signature,
            "classroute {:?} seq {seq}: members disagree on the operation",
            route.id
        );
        state.received += 1;

        match input {
            CollContribution::Allreduce { op, dtype, data, output } => {
                match &mut state.acc {
                    Some(acc) => combine(op, dtype, acc, &data),
                    None => state.acc = Some(data),
                }
                state.outputs.push(output);
            }
            CollContribution::Reduce { op, dtype, data, output } => {
                match &mut state.acc {
                    Some(acc) => combine(op, dtype, acc, &data),
                    None => state.acc = Some(data),
                }
                if let Some(out) = output {
                    state.outputs.push(out);
                }
            }
            CollContribution::Broadcast { data, output, .. } => {
                if let Some(d) = data {
                    assert!(
                        state.acc.is_none(),
                        "classroute {:?} seq {seq}: two broadcast roots",
                        route.id
                    );
                    state.acc = Some(d);
                }
                if let Some(out) = output {
                    state.outputs.push(out);
                }
            }
            CollContribution::Barrier { output } => {
                if let Some(out) = output {
                    state.outputs.push(out);
                }
            }
        }

        if state.received == state.expected {
            let state = ops.remove(&key).expect("state just inserted");
            drop(ops);
            self.complete(seq, route, state);
        }
        seq
    }

    fn complete(&self, seq: u64, route: &ClassRoute, state: OpState) {
        let (data, credit): (Option<&[u8]>, u64) = match state.signature {
            OpSignature::Allreduce(..) | OpSignature::Reduce(..) => {
                let acc = state.acc.as_deref().expect("reduction has operands");
                (Some(acc), acc.len().max(1) as u64)
            }
            OpSignature::Broadcast(len) => {
                let acc = state.acc.as_deref().unwrap_or_else(|| {
                    panic!("classroute {:?} seq {seq}: broadcast without a root", route.id)
                });
                assert_eq!(acc.len(), len, "broadcast root length mismatch");
                (Some(acc), len.max(1) as u64)
            }
            OpSignature::Barrier => (None, 1),
        };
        for out in &state.outputs {
            out.complete(data, credit);
        }
        self.inner.completed.store_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classroute::ClassRouteManager;
    use crate::ops::elems;
    use bgq_torus::{Rectangle, TorusShape};

    fn route4() -> (ClassRouteManager, ClassRoute) {
        let shape = TorusShape::new([4, 1, 1, 1, 1]);
        let mgr = ClassRouteManager::new(shape);
        let route = mgr.allocate(Rectangle::full(shape), None).unwrap();
        (mgr, route)
    }

    fn node(a: u16) -> Coords {
        Coords([a, 0, 0, 0, 0])
    }

    #[test]
    fn allreduce_sum_of_doubles() {
        let (_mgr, route) = route4();
        let net = CollNet::new();
        let outs: Vec<MemRegion> = (0..4).map(|_| MemRegion::zeroed(16)).collect();
        let counters: Vec<Counter> = (0..4).map(|_| Counter::new()).collect();
        for c in &counters {
            c.add_expected(16);
        }
        for i in 0..4u16 {
            net.contribute(
                &route,
                node(i),
                CollContribution::Allreduce {
                    op: CollOp::Sum,
                    dtype: DataType::Float64,
                    data: elems::from_f64(&[i as f64, 10.0 * i as f64]),
                    output: CollOutput {
                        region: outs[i as usize].clone(),
                        offset: 0,
                        counter: Some(counters[i as usize].clone()),
                        wakeup: None,
                    },
                },
            );
        }
        for (out, c) in outs.iter().zip(&counters) {
            assert!(c.is_complete());
            assert_eq!(elems::to_f64(&out.to_vec()), vec![6.0, 60.0]);
        }
        assert_eq!(net.completed_ops(), 1);
    }

    #[test]
    fn reduce_delivers_only_to_root() {
        let (_mgr, route) = route4();
        let net = CollNet::new();
        let root_out = MemRegion::zeroed(8);
        for i in 0..4u16 {
            let output = (i == 0).then(|| CollOutput::plain(root_out.clone(), 0));
            net.contribute(
                &route,
                node(i),
                CollContribution::Reduce {
                    op: CollOp::Max,
                    dtype: DataType::Int64,
                    data: elems::from_i64(&[i as i64 * 7 - 3]),
                    output,
                },
            );
        }
        assert_eq!(elems::to_i64(&root_out.to_vec()), vec![18]);
    }

    #[test]
    fn broadcast_from_root_reaches_members() {
        let (_mgr, route) = route4();
        let net = CollNet::new();
        let payload = vec![0xAB; 64];
        let outs: Vec<MemRegion> = (0..3).map(|_| MemRegion::zeroed(64)).collect();
        // Non-root members contribute first: nothing completes early.
        for i in 1..4u16 {
            net.contribute(
                &route,
                node(i),
                CollContribution::Broadcast {
                    data: None,
                    len: 64,
                    output: Some(CollOutput::plain(outs[i as usize - 1].clone(), 0)),
                },
            );
        }
        assert_eq!(net.completed_ops(), 0);
        net.contribute(
            &route,
            node(0),
            CollContribution::Broadcast { data: Some(payload.clone()), len: 64, output: None },
        );
        for out in &outs {
            assert_eq!(out.to_vec(), payload);
        }
    }

    #[test]
    fn barrier_releases_all_counters_only_at_last_arrival() {
        let (_mgr, route) = route4();
        let net = CollNet::new();
        let counters: Vec<Counter> = (0..4).map(|_| Counter::new()).collect();
        for c in &counters {
            c.add_expected(1);
        }
        for i in 0..3u16 {
            net.contribute(
                &route,
                node(i),
                CollContribution::Barrier {
                    output: Some(CollOutput {
                        region: MemRegion::zeroed(0),
                        offset: 0,
                        counter: Some(counters[i as usize].clone()),
                        wakeup: None,
                    }),
                },
            );
            assert!(!counters[0].is_complete(), "no release before all arrive");
        }
        net.contribute(
            &route,
            node(3),
            CollContribution::Barrier {
                output: Some(CollOutput {
                    region: MemRegion::zeroed(0),
                    offset: 0,
                    counter: Some(counters[3].clone()),
                    wakeup: None,
                }),
            },
        );
        assert!(counters.iter().all(|c| c.is_complete()));
    }

    #[test]
    fn pipelined_slices_complete_in_order_per_route() {
        let (_mgr, route) = route4();
        let net = CollNet::new();
        let out = MemRegion::zeroed(8 * 3);
        // Node 0 contributes all three slices up front (pipelining); the
        // others follow one slice at a time.
        for slice in 0..3usize {
            net.contribute(
                &route,
                node(0),
                CollContribution::Allreduce {
                    op: CollOp::Sum,
                    dtype: DataType::Int64,
                    data: elems::from_i64(&[slice as i64]),
                    output: CollOutput::plain(out.clone(), slice * 8),
                },
            );
        }
        for slice in 0..3usize {
            for i in 1..4u16 {
                net.contribute(
                    &route,
                    node(i),
                    CollContribution::Allreduce {
                        op: CollOp::Sum,
                        dtype: DataType::Int64,
                        data: elems::from_i64(&[slice as i64]),
                        output: CollOutput::plain(MemRegion::zeroed(8), 0),
                    },
                );
            }
        }
        assert_eq!(elems::to_i64(&out.to_vec()), vec![0, 4, 8]);
        assert_eq!(net.completed_ops(), 3);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_contribution_panics() {
        let shape = TorusShape::new([4, 2, 1, 1, 1]);
        let mgr = ClassRouteManager::new(shape);
        let rect = Rectangle::new(Coords([0, 0, 0, 0, 0]), Coords([1, 0, 0, 0, 0]));
        let route = mgr.allocate(rect, None).unwrap();
        let net = CollNet::new();
        net.contribute(
            &route,
            Coords([3, 1, 0, 0, 0]),
            CollContribution::Barrier { output: None },
        );
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_operations_panic() {
        let shape = TorusShape::new([2, 1, 1, 1, 1]);
        let mgr = ClassRouteManager::new(shape);
        let route = mgr.allocate(Rectangle::full(shape), None).unwrap();
        let net = CollNet::new();
        net.contribute(
            &route,
            node(0),
            CollContribution::Allreduce {
                op: CollOp::Sum,
                dtype: DataType::Int64,
                data: vec![0u8; 8],
                output: CollOutput::plain(MemRegion::zeroed(8), 0),
            },
        );
        net.contribute(&route, node(1), CollContribution::Barrier { output: None });
    }

    #[test]
    fn concurrent_contributions_from_threads() {
        let shape = TorusShape::new([8, 1, 1, 1, 1]);
        let mgr = ClassRouteManager::new(shape);
        let route = std::sync::Arc::new(mgr.allocate(Rectangle::full(shape), None).unwrap());
        let net = CollNet::new();
        const ROUNDS: usize = 50;
        let outs: Vec<MemRegion> = (0..8).map(|_| MemRegion::zeroed(8 * ROUNDS)).collect();
        std::thread::scope(|s| {
            for i in 0..8u16 {
                let net = net.clone();
                let route = std::sync::Arc::clone(&route);
                let out = outs[i as usize].clone();
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        net.contribute(
                            &route,
                            node(i),
                            CollContribution::Allreduce {
                                op: CollOp::Sum,
                                dtype: DataType::Int64,
                                data: elems::from_i64(&[(r + 1) as i64]),
                                output: CollOutput::plain(out.clone(), r * 8),
                            },
                        );
                    }
                });
            }
        });
        for out in &outs {
            let got = elems::to_i64(&out.to_vec());
            let want: Vec<i64> = (1..=ROUNDS as i64).map(|r| r * 8).collect();
            assert_eq!(got, want);
        }
        assert_eq!(net.completed_ops(), ROUNDS as u64);
    }
}
