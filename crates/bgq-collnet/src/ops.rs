//! Combine operations implemented by the collective-network routers.
//!
//! "The collective network supports both integer and floating point
//! operations such as add, min and max." Operands are streams of 8-byte
//! elements; the routers combine corresponding elements of the down-tree
//! inputs and the local contribution.

/// Element size: the network combines 64-bit words.
pub const ELEM_BYTES: usize = 8;

/// Arithmetic the routers can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Bitwise AND (integer types only).
    BitAnd,
    /// Bitwise OR (integer types only).
    BitOr,
    /// Bitwise XOR (integer types only).
    BitXor,
}

/// Element interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Signed 64-bit integers.
    Int64,
    /// Unsigned 64-bit integers.
    Uint64,
    /// IEEE-754 doubles.
    Float64,
}

impl DataType {
    /// Whether `op` is defined for this type (bitwise ops reject floats,
    /// as the hardware does).
    pub fn supports(self, op: CollOp) -> bool {
        match op {
            CollOp::Sum | CollOp::Min | CollOp::Max => true,
            CollOp::BitAnd | CollOp::BitOr | CollOp::BitXor => self != DataType::Float64,
        }
    }
}

/// Combine `contrib` into `acc` elementwise: `acc[i] = op(acc[i],
/// contrib[i])`.
///
/// # Panics
/// If lengths differ, are not multiples of 8, or the op/type pairing is
/// unsupported.
pub fn combine(op: CollOp, dtype: DataType, acc: &mut [u8], contrib: &[u8]) {
    assert_eq!(acc.len(), contrib.len(), "combine operand length mismatch");
    assert_eq!(acc.len() % ELEM_BYTES, 0, "operands must be whole 8-byte elements");
    assert!(dtype.supports(op), "{op:?} unsupported for {dtype:?}");
    for (a, c) in acc.chunks_exact_mut(ELEM_BYTES).zip(contrib.chunks_exact(ELEM_BYTES)) {
        let cb: [u8; 8] = c.try_into().unwrap();
        let ab: [u8; 8] = (&*a).try_into().unwrap();
        let out: [u8; 8] = match dtype {
            DataType::Int64 => {
                let (x, y) = (i64::from_le_bytes(ab), i64::from_le_bytes(cb));
                match op {
                    CollOp::Sum => x.wrapping_add(y),
                    CollOp::Min => x.min(y),
                    CollOp::Max => x.max(y),
                    CollOp::BitAnd => x & y,
                    CollOp::BitOr => x | y,
                    CollOp::BitXor => x ^ y,
                }
                .to_le_bytes()
            }
            DataType::Uint64 => {
                let (x, y) = (u64::from_le_bytes(ab), u64::from_le_bytes(cb));
                match op {
                    CollOp::Sum => x.wrapping_add(y),
                    CollOp::Min => x.min(y),
                    CollOp::Max => x.max(y),
                    CollOp::BitAnd => x & y,
                    CollOp::BitOr => x | y,
                    CollOp::BitXor => x ^ y,
                }
                .to_le_bytes()
            }
            DataType::Float64 => {
                let (x, y) = (f64::from_le_bytes(ab), f64::from_le_bytes(cb));
                match op {
                    CollOp::Sum => x + y,
                    CollOp::Min => x.min(y),
                    CollOp::Max => x.max(y),
                    _ => unreachable!("guarded by supports()"),
                }
                .to_le_bytes()
            }
        };
        a.copy_from_slice(&out);
    }
}

/// The identity element of `op` for `dtype`, as 8 bytes — what an
/// accumulator starts from.
pub fn identity(op: CollOp, dtype: DataType) -> [u8; 8] {
    match (dtype, op) {
        (DataType::Int64, CollOp::Sum) => 0i64.to_le_bytes(),
        (DataType::Int64, CollOp::Min) => i64::MAX.to_le_bytes(),
        (DataType::Int64, CollOp::Max) => i64::MIN.to_le_bytes(),
        (DataType::Int64 | DataType::Uint64, CollOp::BitAnd) => u64::MAX.to_le_bytes(),
        (DataType::Int64 | DataType::Uint64, CollOp::BitOr | CollOp::BitXor) => {
            0u64.to_le_bytes()
        }
        (DataType::Uint64, CollOp::Sum) => 0u64.to_le_bytes(),
        (DataType::Uint64, CollOp::Min) => u64::MAX.to_le_bytes(),
        (DataType::Uint64, CollOp::Max) => 0u64.to_le_bytes(),
        (DataType::Float64, CollOp::Sum) => 0f64.to_le_bytes(),
        (DataType::Float64, CollOp::Min) => f64::INFINITY.to_le_bytes(),
        (DataType::Float64, CollOp::Max) => f64::NEG_INFINITY.to_le_bytes(),
        (DataType::Float64, _) => panic!("bitwise identity undefined for Float64"),
    }
}

/// Helpers to view/construct element buffers in tests and benchmarks.
pub mod elems {
    /// Pack doubles into a little-endian byte buffer.
    pub fn from_f64(v: &[f64]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    /// Unpack a byte buffer into doubles.
    pub fn to_f64(b: &[u8]) -> Vec<f64> {
        b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// Pack i64s.
    pub fn from_i64(v: &[i64]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    /// Unpack i64s.
    pub fn to_i64(b: &[u8]) -> Vec<i64> {
        b.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_sum() {
        let mut acc = elems::from_f64(&[1.0, 2.0]);
        combine(CollOp::Sum, DataType::Float64, &mut acc, &elems::from_f64(&[0.5, -2.0]));
        assert_eq!(elems::to_f64(&acc), vec![1.5, 0.0]);
    }

    #[test]
    fn i64_min_max() {
        let mut acc = elems::from_i64(&[5, -3]);
        combine(CollOp::Min, DataType::Int64, &mut acc, &elems::from_i64(&[2, 7]));
        assert_eq!(elems::to_i64(&acc), vec![2, -3]);
        combine(CollOp::Max, DataType::Int64, &mut acc, &elems::from_i64(&[4, 0]));
        assert_eq!(elems::to_i64(&acc), vec![4, 0]);
    }

    #[test]
    fn bitwise_ops_on_integers() {
        let mut acc = 0b1100u64.to_le_bytes().to_vec();
        combine(CollOp::BitAnd, DataType::Uint64, &mut acc, &0b1010u64.to_le_bytes());
        assert_eq!(u64::from_le_bytes(acc[..8].try_into().unwrap()), 0b1000);
        combine(CollOp::BitXor, DataType::Uint64, &mut acc, &0b0001u64.to_le_bytes());
        assert_eq!(u64::from_le_bytes(acc[..8].try_into().unwrap()), 0b1001);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn bitwise_on_floats_rejected() {
        let mut acc = vec![0u8; 8];
        combine(CollOp::BitOr, DataType::Float64, &mut acc, &[0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_rejected() {
        let mut acc = vec![0u8; 8];
        combine(CollOp::Sum, DataType::Int64, &mut acc, &[0u8; 16]);
    }

    #[test]
    fn identities_are_neutral() {
        for (op, dt) in [
            (CollOp::Sum, DataType::Float64),
            (CollOp::Min, DataType::Float64),
            (CollOp::Max, DataType::Float64),
            (CollOp::Sum, DataType::Int64),
            (CollOp::Min, DataType::Int64),
            (CollOp::Max, DataType::Int64),
            (CollOp::BitAnd, DataType::Uint64),
            (CollOp::BitOr, DataType::Uint64),
            (CollOp::BitXor, DataType::Uint64),
        ] {
            let mut acc = identity(op, dt).to_vec();
            let sample: Vec<u8> = match dt {
                DataType::Float64 => 42.5f64.to_le_bytes().to_vec(),
                _ => 42u64.to_le_bytes().to_vec(),
            };
            combine(op, dt, &mut acc, &sample);
            assert_eq!(acc, sample, "{op:?}/{dt:?} identity not neutral");
        }
    }

    #[test]
    fn integer_sum_wraps() {
        let mut acc = elems::from_i64(&[i64::MAX]);
        combine(CollOp::Sum, DataType::Int64, &mut acc, &elems::from_i64(&[1]));
        assert_eq!(elems::to_i64(&acc), vec![i64::MIN]);
    }
}
