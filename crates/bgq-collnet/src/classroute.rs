//! Classroute allocation.
//!
//! "Each classroute specifies the links that are the down tree inputs to
//! the router and the uptree output. ... The number of classroutes in which
//! a node can participate is 16; however some are reserved for system use."
//! A collective packet names its classroute, so every participating node
//! must program the *same* route id — allocation therefore has to find an
//! id simultaneously free on every member node. That scarcity is why PAMI
//! exposes communicator "optimize"/"deoptimize" (section III.D): an active
//! set of communicators rotates through the available routes.

use std::collections::HashMap;

use bgq_torus::trees::TreeKind;
use bgq_torus::{Coords, Rectangle, SpanningTree, TorusShape, ALL_DIMS};
use parking_lot::Mutex;

/// Classroutes a node can participate in.
pub const NUM_CLASSROUTES: usize = 16;

/// Routes reserved for system use (the highest ids in this model).
pub const SYSTEM_RESERVED_ROUTES: usize = 2;

/// A classroute identifier (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassRouteId(pub u8);

/// Why classroute allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassRouteError {
    /// No route id is free on every member node — deoptimize something
    /// first.
    Exhausted,
    /// The requested node set is not a contiguous rectangle.
    NotRectangular,
}

impl std::fmt::Display for ClassRouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassRouteError::Exhausted => {
                write!(f, "no classroute id free on all member nodes")
            }
            ClassRouteError::NotRectangular => {
                write!(f, "classroutes require a contiguous rectangular node set")
            }
        }
    }
}

impl std::error::Error for ClassRouteError {}

/// A programmed classroute: the id, the rectangle it covers, and the
/// combine tree the routers follow.
#[derive(Debug, Clone)]
pub struct ClassRoute {
    /// Route id, identical on every member node.
    pub id: ClassRouteId,
    /// Member node set.
    pub rect: Rectangle,
    /// Tree root (where reductions complete).
    pub root: Coords,
    /// The router tree.
    pub tree: SpanningTree,
}

impl ClassRoute {
    /// Number of participating nodes.
    pub fn num_nodes(&self) -> usize {
        self.rect.num_nodes()
    }
}

struct ManagerState {
    /// Per-node bitmask of occupied route ids.
    occupancy: HashMap<usize, u16>,
    /// Live routes by id → rectangle (diagnostics).
    live: HashMap<u8, Rectangle>,
}

/// Allocates classroutes over a torus partition, enforcing the per-node
/// 16-route budget (minus system reservations).
pub struct ClassRouteManager {
    shape: TorusShape,
    state: Mutex<ManagerState>,
}

impl ClassRouteManager {
    /// A manager for one partition. System routes are pre-reserved on every
    /// node.
    pub fn new(shape: TorusShape) -> Self {
        ClassRouteManager {
            shape,
            state: Mutex::new(ManagerState { occupancy: HashMap::new(), live: HashMap::new() }),
        }
    }

    /// The partition shape.
    pub fn shape(&self) -> TorusShape {
        self.shape
    }

    fn user_mask() -> u16 {
        // Low (16 - reserved) ids are user-allocatable.
        (1u16 << (NUM_CLASSROUTES - SYSTEM_RESERVED_ROUTES)) - 1
    }

    /// Program a classroute over `rect`, rooted at `root` (defaults to the
    /// rectangle's low corner). Returns the route or why it cannot exist.
    pub fn allocate(
        &self,
        rect: Rectangle,
        root: Option<Coords>,
    ) -> Result<ClassRoute, ClassRouteError> {
        let root = root.unwrap_or(rect.lo);
        if !rect.contains(root) {
            return Err(ClassRouteError::NotRectangular);
        }
        let mut state = self.state.lock();
        // An id is usable iff free on every member node.
        let mut used = 0u16;
        for c in rect.iter() {
            let node = self.shape.node_index(c);
            used |= state.occupancy.get(&node).copied().unwrap_or(0);
        }
        let free = !used & Self::user_mask();
        if free == 0 {
            return Err(ClassRouteError::Exhausted);
        }
        let id = free.trailing_zeros() as u8;
        for c in rect.iter() {
            let node = self.shape.node_index(c);
            *state.occupancy.entry(node).or_insert(0) |= 1 << id;
        }
        state.live.insert(id, rect);
        let tree = SpanningTree::build(self.shape, rect, root, TreeKind::DimOrdered(ALL_DIMS));
        Ok(ClassRoute { id: ClassRouteId(id), rect, root, tree })
    }

    /// Release a route's id on all its member nodes ("deoptimize").
    pub fn free(&self, route: &ClassRoute) {
        let mut state = self.state.lock();
        for c in route.rect.iter() {
            let node = self.shape.node_index(c);
            if let Some(mask) = state.occupancy.get_mut(&node) {
                *mask &= !(1 << route.id.0);
            }
        }
        state.live.remove(&route.id.0);
    }

    /// How many route ids remain usable on the most-loaded node of `rect`.
    pub fn available_for(&self, rect: Rectangle) -> usize {
        let state = self.state.lock();
        let mut used = 0u16;
        for c in rect.iter() {
            let node = self.shape.node_index(c);
            used |= state.occupancy.get(&node).copied().unwrap_or(0);
        }
        (!used & Self::user_mask()).count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> TorusShape {
        TorusShape::new([4, 4, 1, 1, 1])
    }

    #[test]
    fn allocates_distinct_ids_on_overlapping_rects() {
        let mgr = ClassRouteManager::new(shape());
        let full = Rectangle::full(shape());
        let a = mgr.allocate(full, None).unwrap();
        let b = mgr.allocate(full, None).unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn disjoint_rects_can_share_ids() {
        let mgr = ClassRouteManager::new(shape());
        let left = Rectangle::new(Coords([0, 0, 0, 0, 0]), Coords([1, 3, 0, 0, 0]));
        let right = Rectangle::new(Coords([2, 0, 0, 0, 0]), Coords([3, 3, 0, 0, 0]));
        let a = mgr.allocate(left, None).unwrap();
        let b = mgr.allocate(right, None).unwrap();
        assert_eq!(a.id, b.id, "disjoint node sets reuse the same id");
    }

    #[test]
    fn exhaustion_and_deoptimize_reuse() {
        let mgr = ClassRouteManager::new(shape());
        let full = Rectangle::full(shape());
        let user_routes = NUM_CLASSROUTES - SYSTEM_RESERVED_ROUTES;
        let mut routes = Vec::new();
        for _ in 0..user_routes {
            routes.push(mgr.allocate(full, None).unwrap());
        }
        assert_eq!(mgr.allocate(full, None).unwrap_err(), ClassRouteError::Exhausted);
        assert_eq!(mgr.available_for(full), 0);
        // Deoptimize one communicator → its id becomes reusable.
        let freed = routes.pop().unwrap();
        let freed_id = freed.id;
        mgr.free(&freed);
        let again = mgr.allocate(full, None).unwrap();
        assert_eq!(again.id, freed_id);
    }

    #[test]
    fn root_defaults_to_low_corner_and_tree_spans() {
        let mgr = ClassRouteManager::new(shape());
        let rect = Rectangle::new(Coords([1, 1, 0, 0, 0]), Coords([2, 3, 0, 0, 0]));
        let route = mgr.allocate(rect, None).unwrap();
        assert_eq!(route.root, rect.lo);
        assert_eq!(route.tree.num_nodes(), rect.num_nodes());
        assert_eq!(route.num_nodes(), 6);
    }

    #[test]
    fn root_outside_rect_rejected() {
        let mgr = ClassRouteManager::new(shape());
        let rect = Rectangle::new(Coords([0, 0, 0, 0, 0]), Coords([1, 1, 0, 0, 0]));
        assert_eq!(
            mgr.allocate(rect, Some(Coords([3, 3, 0, 0, 0]))).unwrap_err(),
            ClassRouteError::NotRectangular
        );
    }

    #[test]
    fn partial_overlap_consumes_ids_on_shared_nodes_only() {
        let mgr = ClassRouteManager::new(shape());
        let left = Rectangle::new(Coords([0, 0, 0, 0, 0]), Coords([1, 3, 0, 0, 0]));
        let all = Rectangle::full(shape());
        let _a = mgr.allocate(left, None).unwrap();
        // The full rectangle overlaps `left`, so it must pick a different id,
        // but plenty remain.
        let b = mgr.allocate(all, None).unwrap();
        assert_ne!(b.id.0, 0);
        let right = Rectangle::new(Coords([2, 0, 0, 0, 0]), Coords([3, 3, 0, 0, 0]));
        // Right half: id 0 still free there.
        let c = mgr.allocate(right, None).unwrap();
        assert_eq!(c.id.0, 0);
    }
}
