//! The endpoint-multiplexing scale harness.
//!
//! One real [`Context`] per node — the *lead* context — stands in for
//! thousands of virtual endpoints: every other task on the node is
//! registered as a virtual endpoint aliasing the lead context's reception
//! FIFO and mailbox ([`Machine::register_virtual_endpoint`]), so the send
//! path resolves virtual destinations exactly like real ones while the
//! per-endpoint footprint stays at one endpoint-table slot. A handful of OS
//! workers cooperatively pump their nodes: deposit due DES arrivals, drain
//! the context (`advance`), issue the scenario's next send window, then
//! rendezvous on a barrier while worker 0 fast-forwards the virtual clock
//! to the next pending arrival.
//!
//! Scenarios:
//! * [`Scenario::Incast`] — every endpoint sends to one hot endpoint
//!   (task 0): production fan-in, the matching/advance stress case.
//! * [`Scenario::AllToAll`] — destinations spread over the whole machine by
//!   a multiplicative hash: the bisection/aggregate-rate case.
//! * Failure-storm ([`failure_storm`]) — a seeded [`FaultPlan`] kills a
//!   slice of links mid-run under background drop noise while eager
//!   traffic runs behind completion counters; the property is *zero silent
//!   loss*: every message either arrives or fails its counter with a typed
//!   [`pami::DeliveryFault`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use bgq_netsim::MachineParams;
use bgq_torus::{Dir, TorusShape};
use pami::{
    Client, Context, Counter, Endpoint, FaultPlan, Machine, PayloadSource, Recv, SendArgs,
};

use crate::fabric::VirtualFabric;

/// Dispatch id the harness registers on every lead context.
const DISPATCH: u16 = 7;

/// Virtual endpoints multiplexed onto one node (and thus one lead
/// context). Chosen so 100K endpoints fit in ~49 nodes and 1M in 64 —
/// well inside one host while keeping enough nodes for the torus to have
/// real multi-hop paths.
const ENDPOINTS_PER_NODE_TARGET: usize = 2048;

/// Traffic pattern of a scale run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// N→1: every endpoint sends to task 0.
    Incast,
    /// Hashed all-to-all: destinations spread over every node.
    AllToAll,
}

impl Scenario {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Incast => "incast",
            Scenario::AllToAll => "alltoall",
        }
    }
}

/// Configuration of a scale run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Virtual endpoints to instantiate (rounded up to fill nodes evenly).
    pub endpoints: usize,
    /// Traffic pattern.
    pub scenario: Scenario,
    /// Messages each endpoint sends over the whole run.
    pub msgs_per_endpoint: u64,
    /// Payload bytes per message (8 = short-tier flood).
    pub payload: usize,
    /// OS worker threads (0 = available parallelism).
    pub workers: usize,
    /// Sends issued per node per scheduling round.
    pub window: usize,
    /// Coalesce small sends per destination ([`pami::AggrConfig`]
    /// defaults): the TRAM-style aggregation arm of the scale curve.
    pub aggregation: bool,
}

impl ScaleConfig {
    /// Defaults for `endpoints` virtual endpoints: short-tier flood, one
    /// message per endpoint at 1M endpoints scaling up to 8 at 10K and
    /// below — total traffic stays bounded while every endpoint stays hot.
    pub fn for_endpoints(endpoints: usize, scenario: Scenario) -> ScaleConfig {
        let msgs_per_endpoint = (400_000 / endpoints.max(1)).clamp(1, 8) as u64;
        ScaleConfig {
            endpoints,
            scenario,
            msgs_per_endpoint,
            payload: 8,
            workers: 0,
            window: 2048,
            aggregation: false,
        }
    }

    /// The same run with per-destination coalescing on.
    pub fn aggregated(mut self) -> ScaleConfig {
        self.aggregation = true;
        self
    }
}

/// What a scale run measured.
#[derive(Debug, Clone)]
pub struct ScaleStats {
    /// Scenario run.
    pub scenario: &'static str,
    /// Virtual endpoints actually instantiated (config rounded up).
    pub endpoints: usize,
    /// Simulated nodes.
    pub nodes: usize,
    /// Virtual endpoints per node.
    pub ppn: usize,
    /// Messages sent / arrived (equal on a clean run).
    pub sent: u64,
    /// Messages dispatched at their destination contexts.
    pub arrived: u64,
    /// Wall-clock seconds of the run loop.
    pub wall_s: f64,
    /// Final virtual (DES) time in seconds.
    pub virtual_s: f64,
    /// DES delivery events processed.
    pub des_events: u64,
    /// Aggregate wall-clock message rate (arrived / wall_s).
    pub msg_rate: f64,
    /// Advance-latency percentiles over sampled `Context::advance` calls,
    /// nanoseconds.
    pub advance_p50_ns: u64,
    /// p99 of the same samples.
    pub advance_p99_ns: u64,
    /// Sample count behind the percentiles.
    pub advance_samples: usize,
    /// Coalesced frames injected over the run (`aggr.frames`; 0 with
    /// aggregation off or telemetry compiled out).
    pub aggr_frames: u64,
    /// Records that rode those frames (`aggr.batched_msgs`).
    pub aggr_batched: u64,
}

impl ScaleStats {
    /// Mean records per coalesced frame; 0 when no frames were cut.
    pub fn aggr_mean_batch(&self) -> f64 {
        if self.aggr_frames > 0 {
            self.aggr_batched as f64 / self.aggr_frames as f64
        } else {
            0.0
        }
    }
}

/// Per-node counter, cache-line padded: incast makes one of these hot.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// Send-side scheduling state of one node (owned by one worker).
struct NodeState {
    node: u32,
    ctx: Arc<Context>,
    /// Messages this node still has to issue.
    remaining: u64,
    /// Per-node issue counter driving sender/destination rotation.
    issued: u64,
}

/// The co-simulation harness: a real machine with a [`VirtualFabric`]
/// transport, one lead context per node, and every other task registered
/// as a virtual endpoint.
pub struct ScaleHarness {
    cfg: ScaleConfig,
    machine: Arc<Machine>,
    vf: Arc<VirtualFabric>,
    nodes: usize,
    ppn: usize,
    /// Lead clients (kept alive for their contexts), one per node.
    clients: Vec<Arc<Client>>,
    arrived: Arc<Vec<PaddedCounter>>,
}

impl ScaleHarness {
    /// Build the machine, lead contexts, and virtual endpoint table for
    /// `cfg`. Endpoint count is rounded up so nodes are uniformly loaded.
    pub fn new(cfg: ScaleConfig) -> ScaleHarness {
        let nodes = (cfg.endpoints / ENDPOINTS_PER_NODE_TARGET).clamp(2, 64);
        let ppn = cfg.endpoints.div_ceil(nodes);
        let shape = TorusShape::for_nodes(nodes);
        let vf = VirtualFabric::new(shape, MachineParams::default());
        let mut builder = Machine::builder(shape)
            .oversubscribed_ppn(ppn)
            .transport(vf.clone() as Arc<dyn bgq_mu::Transport>);
        if cfg.aggregation {
            // Node-bucket (TRAM intermediate) mode: with thousands of
            // virtual endpoints per node, per-endpoint buckets would see
            // ~1 record each; bucketing by destination node is what makes
            // frames fill at scale. Records carry their endpoint address
            // and the receiving lead context fans them out.
            builder = builder
                .aggregation(pami::AggrConfig { node_buckets: true, ..Default::default() });
        }
        let machine = builder.build();
        let arrived: Arc<Vec<PaddedCounter>> =
            Arc::new((0..nodes).map(|_| PaddedCounter(AtomicU64::new(0))).collect());
        let mut clients = Vec::with_capacity(nodes);
        for node in 0..nodes as u32 {
            let lead_task = node * ppn as u32;
            let client = Client::create(&machine, lead_task, "scale", 1);
            let ctx = client.context(0);
            let arrived = Arc::clone(&arrived);
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_ctx, _msg, _first| {
                    arrived[node as usize].0.fetch_add(1, Ordering::Relaxed);
                    Recv::Done
                }),
            );
            // Every non-lead task on the node aliases the lead context.
            for task in node * ppn as u32 + 1..(node + 1) * ppn as u32 {
                machine.register_virtual_endpoint(task, 0, ctx);
            }
            clients.push(client);
        }
        ScaleHarness { cfg, machine, vf, nodes, ppn, clients, arrived }
    }

    /// Virtual endpoints instantiated (config rounded up to `nodes × ppn`).
    pub fn endpoints(&self) -> usize {
        self.nodes * self.ppn
    }

    /// The machine under test (for invariants checks).
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Destination task for the `issued`-th message of `src_task`.
    fn dest_of(&self, src_task: u32, issued: u64) -> u32 {
        match self.cfg.scenario {
            Scenario::Incast => 0,
            Scenario::AllToAll => {
                let tasks = (self.nodes * self.ppn) as u64;
                // Knuth multiplicative spread: consecutive messages of one
                // sender land on well-separated nodes.
                ((src_task as u64 * 2_654_435_761 + issued * 40_503) % tasks) as u32
            }
        }
    }

    /// Run the scenario to completion; panics if the run stops making
    /// progress (a delivery invariant broke).
    pub fn run(&self) -> ScaleStats {
        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.cfg.workers
        }
        .min(self.nodes);
        let per_endpoint = self.cfg.msgs_per_endpoint;
        let total_msgs = (self.endpoints() as u64) * per_endpoint;
        let sent = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        // Monotonic progress counter: any worker that did work this round
        // bumps it; each worker compares against the value it saw last
        // round. Purely a stall diagnostic.
        let progress = AtomicU64::new(0);
        let barrier = Barrier::new(workers);
        let payload = bytes::Bytes::from(vec![0u8; self.cfg.payload]);
        let start = Instant::now();
        let mut all_samples: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let mut owned: Vec<NodeState> = (0..self.nodes)
                    .filter(|n| n % workers == w)
                    .map(|n| NodeState {
                        node: n as u32,
                        ctx: Arc::clone(self.clients[n].context(0)),
                        remaining: self.ppn as u64 * per_endpoint,
                        issued: 0,
                    })
                    .collect();
                let sent = &sent;
                let done = &done;
                let progress = &progress;
                let barrier = &barrier;
                let payload = payload.clone();
                let this = &*self;
                handles.push(s.spawn(move || {
                    let mut samples: Vec<u64> = Vec::with_capacity(4096);
                    let mut advances: u64 = 0;
                    let mut stall_rounds: u32 = 0;
                    let mut progress_seen: u64 = 0;
                    loop {
                        let mut progressed = false;
                        for st in owned.iter_mut() {
                            progressed |= this.vf.pump_node(st.node) > 0;
                            // Drain the context; sample the advance cost.
                            loop {
                                let sample = advances.is_multiple_of(16);
                                advances += 1;
                                let t0 = sample.then(Instant::now);
                                let events = st.ctx.advance();
                                if let Some(t0) = t0 {
                                    let ns = t0.elapsed().as_nanos() as u64;
                                    if samples.len() < 65_536 {
                                        samples.push(ns);
                                    }
                                }
                                progressed |= events > 0;
                                if events == 0 {
                                    break;
                                }
                            }
                            // Issue this round's send window.
                            let quota = (this.cfg.window as u64).min(st.remaining);
                            for _ in 0..quota {
                                let local = (st.issued % this.ppn as u64) as u32;
                                let src_task = st.node * this.ppn as u32 + local;
                                let dest = this.dest_of(src_task, st.issued / this.ppn as u64);
                                st.ctx
                                    .send(SendArgs {
                                        dest: Endpoint::of_task(dest),
                                        dispatch: DISPATCH,
                                        metadata: Vec::new(),
                                        payload: PayloadSource::Immediate(payload.clone()),
                                        local_done: None,
                                    })
                                    .expect("clean-fabric send initiation");
                                st.issued += 1;
                            }
                            if quota > 0 {
                                st.remaining -= quota;
                                sent.fetch_add(quota, Ordering::Relaxed);
                                progressed = true;
                            }
                            // Aggregated tails: once a node has issued its
                            // whole quota, cut the open buckets so the
                            // drain is not gated on the age bound.
                            if st.remaining == 0 && st.ctx.aggr_pending() > 0 {
                                progressed |= st.ctx.flush_aggr() > 0;
                            }
                        }
                        if progressed {
                            progress.fetch_add(1, Ordering::Relaxed);
                        }
                        barrier.wait();
                        if w == 0 {
                            let arrived: u64 =
                                this.arrived.iter().map(|c| c.0.load(Ordering::Relaxed)).sum();
                            if arrived == total_msgs && this.vf.is_idle() {
                                done.store(true, Ordering::Release);
                            } else {
                                // Fast-forward virtual time to the next
                                // arrival so the next round has work.
                                this.vf.advance_clock_to_next();
                            }
                        }
                        barrier.wait();
                        if done.load(Ordering::Acquire) {
                            return samples;
                        }
                        let cur = progress.load(Ordering::Relaxed);
                        let any_progress = cur != progress_seen;
                        progress_seen = cur;
                        stall_rounds = if any_progress { 0 } else { stall_rounds + 1 };
                        assert!(
                            stall_rounds < 10_000,
                            "scale run stalled: sent={} arrived={} in-flight={}",
                            sent.load(Ordering::Relaxed),
                            this.arrived.iter().map(|c| c.0.load(Ordering::Relaxed)).sum::<u64>(),
                            !this.vf.is_idle(),
                        );
                    }
                }));
            }
            for h in handles {
                all_samples.push(h.join().expect("scale worker"));
            }
        });
        let wall_s = start.elapsed().as_secs_f64();
        let arrived: u64 = self.arrived.iter().map(|c| c.0.load(Ordering::Relaxed)).sum();
        let (_, _, des_events) = self.vf.stats();
        let mut samples: Vec<u64> = all_samples.into_iter().flatten().collect();
        samples.sort_unstable();
        let pct = |p: f64| -> u64 {
            if samples.is_empty() {
                0
            } else {
                samples[((samples.len() - 1) as f64 * p) as usize]
            }
        };
        let snap = self.machine.telemetry().snapshot();
        ScaleStats {
            scenario: match (self.cfg.scenario, self.cfg.aggregation) {
                (Scenario::Incast, false) => "incast",
                (Scenario::Incast, true) => "incast_aggr",
                (Scenario::AllToAll, false) => "alltoall",
                (Scenario::AllToAll, true) => "alltoall_aggr",
            },
            endpoints: self.endpoints(),
            nodes: self.nodes,
            ppn: self.ppn,
            sent: sent.load(Ordering::Relaxed),
            arrived,
            wall_s,
            virtual_s: self.vf.now_ns() as f64 * 1e-9,
            des_events,
            msg_rate: arrived as f64 / wall_s.max(1e-9),
            advance_p50_ns: pct(0.50),
            advance_p99_ns: pct(0.99),
            advance_samples: samples.len(),
            aggr_frames: snap.counter("aggr.frames"),
            aggr_batched: snap.counter("aggr.batched_msgs"),
        }
    }
}

/// Result of a [`failure_storm`] run.
#[derive(Debug, Clone)]
pub struct StormStats {
    /// Messages initiated.
    pub sent: u64,
    /// Messages dispatched at their destinations.
    pub arrived: u64,
    /// Messages whose completion counters failed with a typed fault.
    pub failed: u64,
    /// Link-kill events the fault plan fired.
    pub links_killed: u64,
    /// RTO-driven retransmits the reliability layer performed.
    pub retransmits: u64,
    /// SACK fast retransmits: losses recovered from selective-ack
    /// feedback without waiting out an RTO.
    pub sack_retransmits: u64,
    /// Link-layer control frames (acks/SACKs) charged on the DES clock.
    pub control_frames: u64,
    /// The zero-silent-loss property: every message accounted for.
    pub zero_lost: bool,
}

/// Seeded failure-storm: `endpoints` virtual endpoints over 8 nodes, eager
/// traffic behind completion counters, while the fault plan kills a slice
/// of links mid-run under background drop noise. Single-threaded and
/// deterministic for a given `seed`.
pub fn failure_storm(endpoints: usize, seed: u64) -> StormStats {
    const NODES: usize = 8;
    const PAYLOAD: usize = 256;
    let ppn = endpoints.div_ceil(NODES);
    let shape = TorusShape::for_nodes(NODES);
    let vf = VirtualFabric::new(shape, MachineParams::default());
    // Background drop noise everywhere, plus four links killed mid-run
    // (staggered crossing counts so the kills land while traffic flows).
    let mut plan = FaultPlan::new().seed(seed).drop_rate(0.01);
    for (i, node) in [1u32, 3, 5, 7].into_iter().enumerate() {
        plan = plan.kill_link_at(node, Dir::all()[i % 2], 8 + 6 * i as u64);
    }
    let machine = Machine::builder(shape)
        .oversubscribed_ppn(ppn)
        .transport(vf.clone() as Arc<dyn bgq_mu::Transport>)
        .fault_plan(plan)
        .build();
    let arrived = Arc::new(AtomicU64::new(0));
    let mut ctxs: Vec<Arc<Context>> = Vec::with_capacity(NODES);
    let mut clients = Vec::with_capacity(NODES);
    for node in 0..NODES as u32 {
        let lead = node * ppn as u32;
        let client = Client::create(&machine, lead, "storm", 1);
        let ctx = Arc::clone(client.context(0));
        let arrived = Arc::clone(&arrived);
        ctx.set_dispatch(
            DISPATCH,
            Arc::new(move |_ctx, _msg, _first| {
                arrived.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
        for task in lead + 1..lead + ppn as u32 {
            machine.register_virtual_endpoint(task, 0, &ctx);
        }
        ctxs.push(ctx);
        clients.push(client);
    }
    // Every endpoint sends one counted eager message to a hashed remote.
    let tasks = (NODES * ppn) as u64;
    let mut counters: Vec<Counter> = Vec::with_capacity(tasks as usize);
    let mut sent = 0u64;
    for node in 0..NODES as u32 {
        let ctx = &ctxs[node as usize];
        for local in 0..ppn as u32 {
            let src = node * ppn as u32 + local;
            // Force a *cross-node* destination: on-node traffic rides the
            // mailbox, which the fault plan cannot touch.
            let mut dest = ((src as u64 * 2_654_435_761 + seed) % tasks) as u32;
            if dest / ppn as u32 == node {
                dest = (dest + ppn as u32) % tasks as u32;
            }
            let done = Counter::new();
            done.add_expected(PAYLOAD as u64);
            ctx.send(SendArgs {
                dest: Endpoint::of_task(dest),
                dispatch: DISPATCH,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(bytes::Bytes::from(vec![0u8; PAYLOAD])),
                local_done: Some(done.clone()),
            })
            .expect("storm send initiation");
            counters.push(done);
            sent += 1;
            // Interleave pumping so kills land mid-traffic, not after.
            if sent.is_multiple_of(64) {
                storm_pump(&vf, &ctxs);
            }
        }
    }
    // Drain: pump until every counter resolves (delivered or failed) and
    // the DES holds nothing. Bounded so a reliability bug fails loudly.
    let mut rounds = 0u32;
    loop {
        let worked = storm_pump(&vf, &ctxs);
        let resolved = counters.iter().all(|c| c.is_complete());
        if resolved && vf.is_idle() && !worked {
            break;
        }
        rounds += 1;
        assert!(rounds < 2_000_000, "failure storm failed to drain");
    }
    let failed = counters.iter().filter(|c| c.fault().is_some()).count() as u64;
    let ras = machine.fabric().ras_events().0;
    let links_killed = ras
        .iter()
        .filter(|e| matches!(e.kind, pami::RasEventKind::LinkDown))
        .count() as u64;
    let retransmits =
        ras.iter().filter(|e| matches!(e.kind, pami::RasEventKind::Retransmit)).count() as u64;
    let sack_retransmits = ras
        .iter()
        .filter(|e| matches!(e.kind, pami::RasEventKind::SackRetransmit))
        .count() as u64;
    let control_frames = vf.control_stats().0;
    let arrived = arrived.load(Ordering::Relaxed);
    StormStats {
        sent,
        arrived,
        failed,
        links_killed,
        retransmits,
        sack_retransmits,
        control_frames,
        // Nothing vanished: every send is accounted for as an arrival or a
        // typed counter fault. (A frame delivered but unacknowledged when
        // its channel dies legitimately counts on both sides, so the sum
        // can exceed `sent`; silent loss is the sum falling short.)
        zero_lost: arrived + failed >= sent,
    }
}

/// One storm pump round: deposit due arrivals, advance every context once,
/// fast-forward the clock when everything stalls. Returns whether any work
/// happened.
fn storm_pump(vf: &Arc<VirtualFabric>, ctxs: &[Arc<Context>]) -> bool {
    let mut worked = false;
    for ctx in ctxs {
        worked |= vf.pump_node(ctx.node()) > 0;
        worked |= ctx.advance() > 0;
    }
    if !worked {
        worked = vf.advance_clock_to_next().is_some();
    }
    worked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_completes_and_counts_every_message() {
        let harness = ScaleHarness::new(ScaleConfig {
            endpoints: 4096,
            scenario: Scenario::Incast,
            msgs_per_endpoint: 2,
            payload: 8,
            workers: 2,
            window: 512,
            aggregation: false,
        });
        let stats = harness.run();
        assert_eq!(stats.endpoints, 4096);
        assert_eq!(stats.sent, 8192);
        assert_eq!(stats.arrived, 8192, "every incast message must arrive");
        assert!(stats.virtual_s > 0.0, "virtual time must advance");
        assert!(stats.des_events > 0, "delivery must ride the DES");
    }

    #[test]
    fn alltoall_completes_across_nodes() {
        let harness = ScaleHarness::new(ScaleConfig {
            endpoints: 4096,
            scenario: Scenario::AllToAll,
            msgs_per_endpoint: 1,
            payload: 8,
            workers: 2,
            window: 512,
            aggregation: false,
        });
        let stats = harness.run();
        assert_eq!(stats.sent, stats.arrived);
        assert!(stats.advance_samples > 0);
    }

    #[test]
    fn aggregated_alltoall_batches_and_loses_nothing() {
        let harness = ScaleHarness::new(
            ScaleConfig {
                endpoints: 4096,
                scenario: Scenario::AllToAll,
                msgs_per_endpoint: 2,
                payload: 8,
                workers: 2,
                window: 512,
                aggregation: false,
            }
            .aggregated(),
        );
        let stats = harness.run();
        assert_eq!(stats.scenario, "alltoall_aggr");
        assert_eq!(stats.sent, stats.arrived, "coalescing must not lose records");
        if bgq_upc::ENABLED {
            assert!(stats.aggr_frames > 0, "the aggregated arm must cut frames");
            assert!(
                stats.aggr_mean_batch() > 1.0,
                "frames must carry more than one record on average: {:.2}",
                stats.aggr_mean_batch(),
            );
        }
    }

    #[test]
    fn failure_storm_loses_nothing() {
        let stats = failure_storm(1024, 0xBADC0FFE);
        assert_eq!(stats.sent, 1024);
        assert!(stats.zero_lost, "silent loss: {stats:?}");
        assert!(stats.links_killed > 0, "the kill schedule must fire");
        assert!(
            stats.retransmits + stats.sack_retransmits > 0,
            "1% drop noise over 1024 eager messages must cost retransmits"
        );
        assert!(
            stats.control_frames > 0,
            "selective-repeat acks must ride the DES clock: {stats:?}"
        );
    }
}
