//! The DES-clocked packet transport.
//!
//! [`VirtualFabric`] implements [`bgq_mu::Transport`]: every reception-FIFO
//! deposit the MU fabric would have performed synchronously is instead
//! scheduled as a discrete event at its physically-motivated arrival time —
//! per-hop latency plus wire serialization, both from
//! [`bgq_netsim::MachineParams`] — and performed when the shared virtual
//! clock reaches it. Wall-clock thread interleaving stops determining
//! delivery order; the modeled network does.
//!
//! Sharding: pending deliveries are held per *destination node*, so the
//! worker that owns a node drains its arrivals without contending with
//! workers pumping other nodes, and every deposit into a given reception
//! FIFO happens on its owner's thread — the same locality the MU's per-node
//! reception FIFOs give real PAMI.
//!
//! Ordering: the MU contract is that packets of one (source → destination)
//! flow arrive in injection order. Scheduling by size could invert two
//! back-to-back messages of different lengths, so each shard clamps every
//! arrival from a given source node to be no earlier than the previous one
//! — FIFO per (src node, dst node), exactly the torus' per-path guarantee —
//! with the DES engine's sequence number breaking ties.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bgq_mu::{MuPacket, RecFifo, RecFifoId, Transport};
use bgq_netsim::des::Engine;
use bgq_netsim::MachineParams;
use bgq_torus::{hop_distance, TorusShape};
use parking_lot::Mutex;

/// Per-packet wire overhead (the MU's 32-byte packet header).
const PACKET_HEADER_BYTES: u64 = 32;

/// One scheduled delivery: a whole fragmented message bound for one
/// reception FIFO. Equality is by `id` only — [`Engine`] requires
/// `PartialEq` for its event ordering, and packets are intentionally not
/// comparable (or cloneable).
struct Pending {
    id: u64,
    fifo: Arc<RecFifo>,
    packets: Vec<MuPacket>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

/// Per-destination-node pending state.
struct Shard {
    engine: Engine<Pending>,
    /// Last scheduled arrival per source node: the per-path FIFO clamp.
    last_arrival: HashMap<u32, f64>,
    next_id: u64,
}

/// A DES-clocked [`Transport`]: deposits are scheduled at modeled arrival
/// times and performed by [`VirtualFabric::pump_node`] when the shared
/// virtual clock reaches them.
pub struct VirtualFabric {
    shape: TorusShape,
    params: MachineParams,
    /// The shared virtual clock, in integer nanoseconds (atomically
    /// readable from every sending thread; only the harness advances it).
    now_ns: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    /// Messages scheduled but not yet deposited (cheap global idle check).
    in_flight: AtomicU64,
    scheduled: AtomicU64,
    delivered: AtomicU64,
    /// Link-layer control frames (selective-repeat acks/SACKs) charged on
    /// the clock via [`Transport::deliver_control`].
    control_frames: AtomicU64,
    control_bytes: AtomicU64,
}

impl VirtualFabric {
    /// A virtual fabric over `shape` with `params` supplying link timing.
    pub fn new(shape: TorusShape, params: MachineParams) -> Arc<VirtualFabric> {
        Arc::new(VirtualFabric {
            shape,
            params,
            now_ns: AtomicU64::new(0),
            shards: (0..shape.num_nodes())
                .map(|_| {
                    Mutex::new(Shard {
                        engine: Engine::new(),
                        last_arrival: HashMap::new(),
                        next_id: 0,
                    })
                })
                .collect(),
            in_flight: AtomicU64::new(0),
            scheduled: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            control_frames: AtomicU64::new(0),
            control_bytes: AtomicU64::new(0),
        })
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Move the virtual clock forward to `ns` (monotonic: earlier values
    /// are ignored). Deposits due at or before the new time become
    /// eligible for [`VirtualFabric::pump_node`].
    pub fn advance_clock_to(&self, ns: u64) {
        self.now_ns.fetch_max(ns, Ordering::AcqRel);
    }

    /// Advance the clock to the earliest pending arrival across all nodes
    /// and return the new time; `None` when nothing is in flight. The
    /// harness calls this when every context is idle — virtual time skips
    /// straight to the next event, the classic DES fast-forward.
    pub fn advance_clock_to_next(&self) -> Option<u64> {
        let mut min_t = f64::INFINITY;
        for shard in &self.shards {
            if let Some(t) = shard.lock().engine.peek_time() {
                min_t = min_t.min(t);
            }
        }
        if !min_t.is_finite() {
            return None;
        }
        let ns = (min_t * 1e9).ceil() as u64;
        self.advance_clock_to(ns);
        Some(self.now_ns())
    }

    /// Deposit every delivery for `node` due at or before the current
    /// virtual time; returns messages deposited. Meant to be called by the
    /// worker that owns `node`, so FIFO deposits stay on one thread.
    pub fn pump_node(&self, node: u32) -> usize {
        let limit = self.now_ns.load(Ordering::Acquire) as f64 * 1e-9;
        let mut shard = self.shards[node as usize].lock();
        let mut done = 0usize;
        while let Some(ev) = shard.engine.next_due(limit) {
            let Pending { fifo, packets, .. } = ev.payload;
            let n = packets.len() as u64;
            let mut it = packets.into_iter();
            fifo.deliver_batch(n, |_| it.next().expect("scheduled packet count"));
            done += 1;
        }
        drop(shard);
        if done > 0 {
            self.in_flight.fetch_sub(done as u64, Ordering::AcqRel);
            self.delivered.fetch_add(done as u64, Ordering::Relaxed);
        }
        done
    }

    /// Whether any scheduled delivery is still undeposited.
    pub fn is_idle(&self) -> bool {
        self.in_flight.load(Ordering::Acquire) == 0
    }

    /// (messages scheduled, messages deposited, DES events processed).
    pub fn stats(&self) -> (u64, u64, u64) {
        let processed: u64 = self.shards.iter().map(|s| s.lock().engine.processed()).sum();
        (self.scheduled.load(Ordering::Relaxed), self.delivered.load(Ordering::Relaxed), processed)
    }

    /// (control frames charged, control bytes charged): the reverse-path
    /// ack/SACK traffic the reliability layer put on the virtual wire.
    pub fn control_stats(&self) -> (u64, u64) {
        (
            self.control_frames.load(Ordering::Relaxed),
            self.control_bytes.load(Ordering::Relaxed),
        )
    }
}

impl Transport for VirtualFabric {
    fn deliver(
        &self,
        src_node: u32,
        dst_node: u32,
        _rec_fifo: RecFifoId,
        fifo: &Arc<RecFifo>,
        npackets: u64,
        make: &mut dyn FnMut(u64) -> MuPacket,
    ) {
        // Materialize the message now (the builder closure borrows send-path
        // state that won't outlive this call) and cost it on the wire.
        let mut packets = Vec::with_capacity(npackets as usize);
        let mut wire_bytes = 0u64;
        for i in 0..npackets {
            let pkt = make(i);
            wire_bytes += pkt.payload.len() as u64 + PACKET_HEADER_BYTES;
            packets.push(pkt);
        }
        let hops = hop_distance(
            self.shape,
            self.shape.coords_of(src_node as usize),
            self.shape.coords_of(dst_node as usize),
        );
        let now = self.now_ns.load(Ordering::Acquire) as f64 * 1e-9;
        let mut arrival = now
            + hops as f64 * self.params.hop_latency
            + wire_bytes as f64 / self.params.link_payload_bw;
        let mut shard = self.shards[dst_node as usize].lock();
        // Per-(src,dst) FIFO clamp: never schedule ahead of an earlier
        // message from the same source.
        let last = shard.last_arrival.entry(src_node).or_insert(0.0);
        if arrival < *last {
            arrival = *last;
        }
        *last = arrival;
        let id = shard.next_id;
        shard.next_id += 1;
        shard.engine.schedule(arrival, Pending { id, fifo: Arc::clone(fifo), packets });
        drop(shard);
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.scheduled.fetch_add(1, Ordering::Relaxed);
    }

    fn pump(&self) -> usize {
        let mut done = 0;
        for node in 0..self.shards.len() as u32 {
            done += self.pump_node(node);
        }
        done
    }

    fn deliver_control(&self, src_node: u32, dst_node: u32, bytes: u64) {
        // A control frame deposits nothing, but it occupies the
        // (src, dst) path on the wire: charge its serialization through
        // the per-path FIFO clamp so later traffic on the same path
        // cannot be scheduled ahead of it. This is how the SR ack stream
        // shows up on the DES clock without a reception-FIFO target.
        let hops = hop_distance(
            self.shape,
            self.shape.coords_of(src_node as usize),
            self.shape.coords_of(dst_node as usize),
        );
        let now = self.now_ns.load(Ordering::Acquire) as f64 * 1e-9;
        let arrival = now
            + hops as f64 * self.params.hop_latency
            + (bytes + PACKET_HEADER_BYTES) as f64 / self.params.link_payload_bw;
        let mut shard = self.shards[dst_node as usize].lock();
        let last = shard.last_arrival.entry(src_node).or_insert(0.0);
        if arrival > *last {
            *last = arrival;
        }
        drop(shard);
        self.control_frames.fetch_add(1, Ordering::Relaxed);
        self.control_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn packet(src: u32, seq: u64, len: usize) -> MuPacket {
        MuPacket {
            src_node: src,
            src_context: 0,
            dispatch: 0,
            metadata: Bytes::new(),
            msg_id: seq,
            msg_len: len as u32,
            offset: 0,
            link_seq: seq,
            crc: 0,
            short: true,
            payload: bgq_mu::PacketPayload::Inline(Bytes::from(vec![0u8; len])),
        }
    }

    fn harness() -> (Arc<VirtualFabric>, Arc<RecFifo>) {
        let shape = TorusShape::for_nodes(4);
        let vf = VirtualFabric::new(shape, MachineParams::default());
        (vf, Arc::new(RecFifo::new(64)))
    }

    #[test]
    fn deposits_wait_for_the_virtual_clock() {
        let (vf, fifo) = harness();
        let mut pkt = Some(packet(1, 0, 8));
        vf.deliver(1, 0, RecFifoId(0), &fifo, 1, &mut |_| pkt.take().unwrap());
        assert!(!vf.is_idle());
        assert_eq!(vf.pump_node(0), 0, "clock at zero: nothing due yet");
        assert!(fifo.is_empty());
        vf.advance_clock_to_next().expect("one message in flight");
        assert_eq!(vf.pump_node(0), 1);
        assert!(vf.is_idle());
        assert!(!fifo.is_empty());
    }

    #[test]
    fn same_path_messages_stay_fifo_despite_size_inversion() {
        let (vf, fifo) = harness();
        // A large message then a small one on the same path: the small one
        // would serialize faster, but must not overtake.
        let mut big = Some(packet(1, 0, 512));
        vf.deliver(1, 0, RecFifoId(0), &fifo, 1, &mut |_| big.take().unwrap());
        let mut small = Some(packet(1, 1, 8));
        vf.deliver(1, 0, RecFifoId(0), &fifo, 1, &mut |_| small.take().unwrap());
        vf.advance_clock_to(1_000_000_000);
        assert_eq!(vf.pump_node(0), 2);
        let first = fifo.poll().expect("two deposits");
        assert_eq!(first.msg_id, 0, "injection order preserved");
        assert_eq!(fifo.poll().expect("second deposit").msg_id, 1);
    }

    #[test]
    fn control_frames_occupy_the_path_and_are_counted() {
        let (vf, fifo) = harness();
        // A fat control frame on the 1->0 path, then a data packet on the
        // same path: the data packet must not be scheduled ahead of the
        // control frame's serialization point.
        vf.deliver_control(1, 0, 1 << 20);
        assert_eq!(vf.control_stats(), (1, 1 << 20));
        let mut pkt = Some(packet(1, 0, 8));
        vf.deliver(1, 0, RecFifoId(0), &fifo, 1, &mut |_| pkt.take().unwrap());
        // A bare 8-byte packet serializes far faster than a megabyte
        // control frame: without the clamp it would be due almost
        // immediately. Check the scheduled arrival really sits at or after
        // the control frame's.
        let due = vf.advance_clock_to_next().expect("data packet in flight") as f64 * 1e-9;
        let control_wire =
            (1u64 << 20) as f64 / MachineParams::default().link_payload_bw;
        assert!(
            due >= control_wire,
            "data arrival {due}s must not precede the control frame's wire time {control_wire}s"
        );
        assert_eq!(vf.pump_node(0), 1);
        // Control frames deposit nothing.
        assert_eq!(fifo.poll().expect("one data deposit").msg_id, 0);
        assert!(fifo.is_empty());
    }

    #[test]
    fn farther_nodes_arrive_later() {
        let shape = TorusShape::for_nodes(8);
        let vf = VirtualFabric::new(shape, MachineParams::default());
        let near_fifo = Arc::new(RecFifo::new(16));
        let far_fifo = Arc::new(RecFifo::new(16));
        // Identical payloads from node 0: one hop vs the longest path.
        let far = (0..shape.num_nodes() as u32)
            .max_by_key(|&n| hop_distance(shape, shape.coords_of(0), shape.coords_of(n as usize)))
            .unwrap();
        let mut a = Some(packet(0, 0, 8));
        vf.deliver(0, 1, RecFifoId(0), &near_fifo, 1, &mut |_| a.take().unwrap());
        let mut b = Some(packet(0, 1, 8));
        vf.deliver(0, far, RecFifoId(0), &far_fifo, 1, &mut |_| b.take().unwrap());
        let near_due = vf.advance_clock_to_next().expect("in flight");
        assert_eq!(vf.pump_node(1), 1, "nearest arrival is due first");
        assert_eq!(vf.pump_node(far), 0, "farther arrival still in flight at {near_due}ns");
        vf.advance_clock_to_next().expect("far message still in flight");
        assert_eq!(vf.pump_node(far), 1);
        assert!(vf.is_idle());
    }
}
