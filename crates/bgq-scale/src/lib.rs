//! # bgq-scale — million-endpoint co-simulation of the PAMI stack
//!
//! Single-host scale testing of the *real* runtime: the full PAMI send
//! path, matching, protocol ladder, and RAS reliability layer run
//! unmodified, while packet *delivery* is lifted onto the netsim
//! discrete-event clock through the [`bgq_mu::Transport`] seam. Two pieces:
//!
//! * [`fabric::VirtualFabric`] — a [`bgq_mu::Transport`] that schedules
//!   every reception-FIFO deposit as a DES event at its modeled arrival
//!   time (hop latency + wire serialization from
//!   [`bgq_netsim::MachineParams`]) and performs it when the virtual clock
//!   catches up. FIFO order per (source, destination) path is preserved.
//! * [`harness::ScaleHarness`] — instantiates 10K–1M *virtual endpoints*
//!   over a few OS threads: one lead [`pami::Context`] per simulated node,
//!   every other task registered as a virtual endpoint aliasing it
//!   ([`pami::Machine::register_virtual_endpoint`]), cooperative
//!   `advance()` scheduling, and DES fast-forward when all sides go idle.
//!   Per-endpoint memory stays O(1): one endpoint-table slot, no context,
//!   no thread.
//!
//! Canned scenarios: incast ([`harness::Scenario::Incast`]), hashed
//! all-to-all ([`harness::Scenario::AllToAll`]), and a seeded failure storm
//! ([`harness::failure_storm`]) that kills links mid-run and checks the
//! zero-silent-loss property end to end.

pub mod fabric;
pub mod harness;

pub use fabric::VirtualFabric;
pub use harness::{failure_storm, ScaleConfig, ScaleHarness, ScaleStats, Scenario, StormStats};
