//! Message-rate regression harness for the MU fast path.
//!
//! Emits `BENCH_msgrate.json` in the repo root with the functional
//! (measured) message rates on this host:
//!
//! * single-context eager message rate (one producer context per node),
//! * short-tier rate at the 128 B cutoff vs the same payload forced onto
//!   the eager path (the three-tier ladder's headline win), gated by the
//!   `short_gate` entry of `ci/scaling_ratchet.json`,
//! * fine-grained aggregation A/B: a random-target 16–64 B flood over
//!   seven destinations with per-destination coalescing on vs off (the
//!   TRAM-style message-rate win), gated by the `aggr_gate` entry (ships
//!   in `report` mode at ≥1.5× with mean batch > 4),
//! * persistent-channel halo arm: per-iteration p50/p99 over 1000
//!   fixed-descriptor exchanges, with the matching-engine counters that
//!   prove the zero-matching claim,
//! * the adaptive policy's learned short/eager and eager/rendezvous
//!   crossovers after a mixed stream,
//! * multi-context rate (4 contexts, 4 sender threads — paper Figure 5 shape),
//! * 16-context aggregate message rate (16 sender threads),
//! * a full context sweep (1/2/4/8/16 contexts) with wall-clock *and*
//!   CPU-critical-path accounting per point,
//! * eager half-round-trip latency,
//! * payload copy counts observed by the MU for the eager memory-FIFO path,
//! * adaptive-vs-static protocol-policy A/B on a mixed-size workload,
//! * `ctx.handoff_ns` / `commthread.handoff_ns` p50/p99 (post → execution),
//! * telemetry overhead: the same rate with the UPC probes compiled out,
//!   measured by spawning a `--no-default-features` build of this binary
//!   (or fed in via `MSGRATE_RATE_TELEMETRY_OFF`), reported both as a
//!   percentage and as absolute nanoseconds per message.
//!
//! ## Accounting
//!
//! Multi-context rates are reported with **CPU critical-path accounting**:
//! total messages divided by the maximum per-thread on-CPU time
//! (`/proc/thread-self/schedstat`). On hosts with fewer cores than contexts
//! the wall-clock aggregate cannot exceed the single-context rate no matter
//! how scalable the software is — the threads time-slice the cores. The
//! critical-path rate is the wall rate the run would achieve given one core
//! per thread: lock contention and shared-cache-line traffic inflate it,
//! scheduler time-slicing does not. Both numbers are emitted per sweep
//! point; `host_cores` records the actual parallelism available.
//!
//! ## Scaling ratchet
//!
//! `ci/scaling_ratchet.json` gates `multi_context_rate >=
//! single_context_rate` (the `"mode"` entry). In `report` mode a violation
//! only prints; once the gate has passed, the entry is flipped to `enforce`
//! and a future violation fails the run (exit 1), so the scaling win cannot
//! silently regress. The same file's `"short_gate"` entry gates
//! `short_rate >= short_gate_min_ratio * eager_rate_at_128B` the same way;
//! it runs **enforced** (the short tier's 2x-at-the-cutoff claim is part of
//! the protocol ladder's contract, and the A/B is measured best-of-5
//! interleaved over ≥100K-message floods so host noise cannot fail it
//! one-sided).
//!
//! When the `telemetry` feature is on, the run also emits the `pamistat`
//! report pair: `telemetry.json` (counters + histogram summaries from every
//! layer: `mu.*`, `ctx.*`, `match.*`, `coll.*`, `commthread.*`) and
//! `telemetry_trace.json` (chrome://tracing timeline).
//!
//! `seed_rate` records the single-context rate measured on the pre-zero-copy
//! tree (commit 281ce36 lineage) on this same host, so the JSON is a
//! self-contained before/after record of the hot-path overhaul.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::{Client, Context, Endpoint, Machine, MemRegion, PayloadSource, Recv, SendArgs};
use pami_bench::{
    measure_adaptive_cutoffs, measure_aggr_rate, measure_handoff_percentiles,
    measure_message_rate, measure_message_rate_multi_stats, measure_pami_half_rtt,
    measure_persistent_halo, measure_policy_ab, measure_rate_at_len, pamistat_sample,
    AggrRateStats, MeasuredRateSeries, MultiRateStats,
};

/// Single-context eager message rate of the tree *before* the zero-copy,
/// lock-free fast path landed, measured with this same binary (msgs/sec).
const SEED_RATE: f64 = 2_715_000.0;

/// Payload copies per eager region message on the seed tree: one
/// whole-message staging copy at injection plus the receiver's deposit.
const SEED_COPIES_PER_MSG: u64 = 2;

/// Context counts for the scaling sweep (paper Figure 5 x-axis, host-scaled).
const SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

const RATCHET_PATH: &str = "ci/scaling_ratchet.json";

/// Short-tier gate: `short_rate` must be at least this multiple of the same
/// 128 B payload forced down the eager path.
const SHORT_GATE_MIN_RATIO: f64 = 2.0;

/// Minimum messages per arm for the short-gate A/B. The smoke runs pass a
/// small `msgs` argument to keep the sweep fast, but an enforced ratio
/// needs tens of milliseconds of flood per measurement, not hundreds of
/// microseconds.
const SHORT_GATE_MSGS: usize = 100_000;

/// Aggregation gate: the coalesced random-target flood must beat the same
/// stream on the short tier by at least this ratio (and actually batch —
/// mean records per frame > [`AGGR_GATE_MIN_BATCH`]).
const AGGR_GATE_MIN_RATIO: f64 = 1.5;
const AGGR_GATE_MIN_BATCH: f64 = 4.0;

/// Minimum messages per arm for the aggregation A/B (same reasoning as
/// [`SHORT_GATE_MSGS`]). Each rep builds a fresh 8-node machine, so a rep
/// needs enough flood after the cold start (first-touch heap, untrained
/// branches) for the steady-state rate to dominate the quotient — at
/// ~200 ns/msg this is ~80 ms of flood per arm.
const AGGR_GATE_MSGS: usize = 400_000;

/// Persistent-halo arm: timed iterations and the tail-flatness budget
/// (p99/p50 must stay under this over the run — fixed descriptors have no
/// protocol decisions or matching to wander off into).
const PERSISTENT_ITERS: usize = 1000;
const PERSISTENT_TAIL_BUDGET: f64 = 1.5;

/// End-to-end payload copies for one single-packet eager region message
/// (no local-completion counter — the zero-copy window path), summed over
/// both nodes. The seed tree staged the whole message before fragmenting,
/// making this 2; the zero-copy path's only copy is the receiver's deposit.
/// Reads the UPC `mu.payload_copies` counters, so it is only meaningful
/// when the `telemetry` feature is compiled in (0 otherwise).
fn measure_eager_copies() -> u64 {
    let machine = Machine::with_nodes(2).build();
    let sender = Client::create(&machine, 0, "copies", 1);
    let receiver = Client::create(&machine, 1, "copies", 1);
    let got = Arc::new(AtomicU64::new(0));
    let sink = MemRegion::zeroed(256);
    {
        let got = Arc::clone(&got);
        let sink = sink.clone();
        receiver.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                let got = Arc::clone(&got);
                Recv::Into {
                    region: sink.clone(),
                    offset: 0,
                    on_complete: Box::new(move |_, _result| {
                        got.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            }),
        );
    }
    sender.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: 1,
        metadata: Vec::new(),
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(vec![42u8; 256]),
            offset: 0,
            len: 256,
        },
        local_done: None,
    }).unwrap();
    while got.load(Ordering::Relaxed) < 1 {
        sender.context(0).advance();
        receiver.context(0).advance();
    }
    machine.fabric().counters(0).payload_copies.value()
        + machine.fabric().counters(1).payload_copies.value()
}

/// Best-of-3 multi-context measurement for one sweep point. "Best" is the
/// run with the highest CPU-critical-path rate (wall rate breaks the tie
/// when schedstat is unavailable).
fn best_multi(contexts: usize, msgs: usize) -> MultiRateStats {
    (0..3)
        .map(|_| measure_message_rate_multi_stats(contexts, msgs.max(1)))
        .reduce(|a, b| {
            let ka = a.cpu_rate.unwrap_or(a.wall_rate);
            let kb = b.cpu_rate.unwrap_or(b.wall_rate);
            if kb > ka { b } else { a }
        })
        .expect("three runs")
}

/// The headline scalability number for one sweep point: CPU critical-path
/// rate when the host exposes schedstat, wall rate otherwise.
fn headline(s: &MultiRateStats) -> f64 {
    s.cpu_rate.unwrap_or(s.wall_rate)
}

fn json_f64_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "null".to_string(),
    }
}

/// Telemetry-off single-context rate: spawn a `--no-default-features` build
/// of this binary in `MSGRATE_EMIT_RATE_ONLY` mode and parse the one number
/// it prints. Returns `Err(reason)` with an explicit skip reason on any
/// failure, so the JSON never silently records `null`.
fn telemetry_off_rate(msgs: usize) -> Result<f64, String> {
    if let Ok(v) = std::env::var("MSGRATE_RATE_TELEMETRY_OFF") {
        return v
            .trim()
            .parse()
            .map_err(|e| format!("MSGRATE_RATE_TELEMETRY_OFF unparsable: {e}"));
    }
    if std::env::var_os("MSGRATE_NO_SUBPROCESS").is_some() {
        return Err("skipped: MSGRATE_NO_SUBPROCESS set".to_string());
    }
    // A separate target dir keeps the feature flip from clobbering the
    // telemetry-on binary at target/release/msgrate (and avoids rebuild
    // thrash between the two feature sets).
    let out = std::process::Command::new("cargo")
        .args([
            "run", "--release", "-q", "-p", "bench", "--bin", "msgrate",
            "--no-default-features", "--target-dir", "target/notelemetry", "--",
        ])
        .arg(msgs.to_string())
        .env("MSGRATE_EMIT_RATE_ONLY", "1")
        .output()
        .map_err(|e| format!("skipped: spawning cargo failed: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "skipped: no-default-features run exited with {}",
            out.status
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .split_whitespace()
        .last()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("skipped: unparsable rate-only output {stdout:?}"))
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum RatchetMode {
    Report,
    Enforce,
}

impl RatchetMode {
    fn as_str(self) -> &'static str {
        match self {
            RatchetMode::Report => "report",
            RatchetMode::Enforce => "enforce",
        }
    }
}

/// Read one gate's mode out of the ratchet file: the value of `"key"` must
/// literally be `"enforce"`; anything else (including an absent key or a
/// missing file) is report mode.
fn ratchet_mode_for(key: &str) -> RatchetMode {
    match std::fs::read_to_string(RATCHET_PATH) {
        Ok(s) if s.contains(&format!("\"{key}\": \"enforce\"")) => RatchetMode::Enforce,
        _ => RatchetMode::Report,
    }
}

/// Read one gate's numeric threshold out of the ratchet file (flat
/// single-line JSON, parsed the same literal way as [`ratchet_mode_for`]);
/// absent key or file yields `default`.
fn ratchet_number_for(key: &str, default: f64) -> f64 {
    let Ok(s) = std::fs::read_to_string(RATCHET_PATH) else { return default };
    let needle = format!("\"{key}\": ");
    let Some(at) = s.find(&needle) else { return default };
    s[at + needle.len()..]
        .split([',', '}'])
        .next()
        .and_then(|t| t.trim().parse().ok())
        .unwrap_or(default)
}

/// Rewrite the ratchet file with both gates' current modes, preserving the
/// short/aggr thresholds, the aggr gate's mode, and the scale/hotspot
/// gates (owned by the `scale` and `hotspot` binaries; this one only
/// carries them through).
fn write_ratchet(scaling: RatchetMode, short: RatchetMode) -> std::io::Result<()> {
    let scale = ratchet_mode_for("scale_gate");
    let hotspot = ratchet_mode_for("hotspot_gate");
    let hotspot_ratio = ratchet_number_for("hotspot_gate_min_ratio", 4.0);
    let aggr = ratchet_mode_for("aggr_gate");
    let aggr_ratio = ratchet_number_for("aggr_gate_min_ratio", AGGR_GATE_MIN_RATIO);
    std::fs::write(
        RATCHET_PATH,
        format!(
            "{{\"mode\": \"{}\", \"short_gate\": \"{}\", \"short_gate_min_ratio\": {SHORT_GATE_MIN_RATIO}, \"scale_gate\": \"{}\", \"hotspot_gate\": \"{}\", \"hotspot_gate_min_ratio\": {hotspot_ratio}, \"aggr_gate\": \"{}\", \"aggr_gate_min_ratio\": {aggr_ratio}}}\n",
            scaling.as_str(),
            short.as_str(),
            scale.as_str(),
            hotspot.as_str(),
            aggr.as_str(),
        ),
    )
}

fn main() {
    let msgs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000usize);

    // Rate-only mode: the telemetry-off arm. Measure the single-context rate
    // and print nothing but the number, so the parent (telemetry-on) run can
    // parse it from stdout.
    if std::env::var_os("MSGRATE_EMIT_RATE_ONLY").is_some() {
        let _ = measure_message_rate(MeasuredRateSeries::Pami, 1, msgs / 10);
        let rate = (0..3)
            .map(|_| measure_message_rate(MeasuredRateSeries::Pami, 1, msgs))
            .fold(0.0f64, f64::max);
        println!("{rate:.1}");
        return;
    }

    // Warm-up pass so allocator and page-cache effects do not skew run 1.
    let _ = measure_message_rate(MeasuredRateSeries::Pami, 1, msgs / 10);

    let best = |ppn: usize, msgs: usize| -> f64 {
        (0..3)
            .map(|_| measure_message_rate(MeasuredRateSeries::Pami, ppn, msgs))
            .fold(0.0f64, f64::max)
    };

    let single = best(1, msgs);
    let sixteen_ppn_wall = best(16, msgs / 16);

    // Three-tier ladder A/B at the cutoff: the same 128 B flood under the
    // default policy (short tier) and forced onto the eager path
    // (`StaticPolicy::with_short(0, …)`, the pre-ladder behaviour).
    // This pair feeds an *enforced* ratchet, so it gets a measurement
    // window sized for the gate rather than the smoke argument: at least
    // SHORT_GATE_MSGS messages per arm (a sub-millisecond flood cannot
    // produce a trustworthy ratio), best-of-5, interleaved so transient
    // host noise must hit both series to move the ratio.
    let short_cutoff = pami::policy::SHORT_CUTOFF;
    let gate_msgs = msgs.max(SHORT_GATE_MSGS);
    let (short_rate, eager_rate_at_cutoff) = (0..5).fold((0.0f64, 0.0f64), |(sh, eg), _| {
        (
            sh.max(measure_rate_at_len(short_cutoff, gate_msgs, false)),
            eg.max(measure_rate_at_len(short_cutoff, gate_msgs, true)),
        )
    });
    let short_ratio = if eager_rate_at_cutoff > 0.0 { short_rate / eager_rate_at_cutoff } else { 0.0 };

    // Persistent-channel halo arm: p50/p99 of a fixed-descriptor
    // bidirectional exchange, plus the flat-matching evidence. Best of 3
    // by tail ratio — the p99 of a sub-µs iteration is the measurement
    // most exposed to scheduler preemption on a shared host, and the
    // claim under test is the channel's flatness, not the host's. It runs
    // *before* the multi-second aggregation floods: a sub-µs percentile
    // measured in the wake of a long flood inherits that flood's cache and
    // scheduler residue, and best-of-3 cannot dodge sticky pollution.
    let halo = (0..3)
        .map(|_| measure_persistent_halo(short_cutoff, PERSISTENT_ITERS))
        .reduce(|a, b| {
            let ta = if a.p50_ns > 0 { a.p99_ns as f64 / a.p50_ns as f64 } else { f64::MAX };
            let tb = if b.p50_ns > 0 { b.p99_ns as f64 / b.p50_ns as f64 } else { f64::MAX };
            if tb < ta { b } else { a }
        })
        .expect("three halo runs");
    let tail_ratio =
        if halo.p50_ns > 0 { halo.p99_ns as f64 / halo.p50_ns as f64 } else { 0.0 };

    // TRAM-style aggregation A/B: the identical LCG-driven random-target
    // 16–64 B stream with per-destination coalescing on and off, best-of-5
    // interleaved like the short gate. The on-arm's batch telemetry rides
    // along so the ratio is only trusted when frames actually carried >
    // AGGR_GATE_MIN_BATCH records each.
    let aggr_gate_msgs = msgs.max(AGGR_GATE_MSGS);
    let mut aggr_on: Option<AggrRateStats> = None;
    let mut aggr_off_rate = 0.0f64;
    for _ in 0..5 {
        let on = measure_aggr_rate(true, aggr_gate_msgs);
        if aggr_on.as_ref().is_none_or(|best| on.rate > best.rate) {
            aggr_on = Some(on);
        }
        aggr_off_rate = aggr_off_rate.max(measure_aggr_rate(false, aggr_gate_msgs).rate);
    }
    let aggr_on = aggr_on.expect("five aggregation runs");
    let aggr_ratio = if aggr_off_rate > 0.0 { aggr_on.rate / aggr_off_rate } else { 0.0 };
    let aggr_mean_batch = aggr_on.mean_batch();

    // Learned crossovers after a mixed windowed stream (diagnostics; the
    // adaptive policy starts at SHORT_CUTOFF / the eager limit and walks
    // from live delivery feedback).
    let (learned_short, learned_eager) = measure_adaptive_cutoffs((msgs / 15).max(400));

    // Context sweep: one flood thread per context pair, total message count
    // held constant across points so every sweep point does the same work.
    let sweep: Vec<MultiRateStats> =
        SWEEP.iter().map(|&c| best_multi(c, msgs / c)).collect();
    let by_ctx = |c: usize| sweep.iter().find(|s| s.contexts == c).expect("sweep point");
    let multi_ctx = 4usize;
    let multi = headline(by_ctx(multi_ctx));
    let sixteen = headline(by_ctx(16));
    let accounting = if sweep.iter().all(|s| s.cpu_rate.is_some()) {
        "cpu_critical_path"
    } else {
        "wall_clock"
    };
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    let latency = measure_pami_half_rtt(false, 8, 2000).as_secs_f64();
    let copies = measure_eager_copies();

    // Protocol-policy A/B: the same mixed-size workload (256 B + 16 KiB
    // streams) under the static crossover and the adaptive per-destination
    // policy. Best-of-3 each, interleaved so host noise hits both arms.
    let ab_msgs = (msgs / 6).max(500);
    let (policy_static, policy_adaptive) = (0..3).fold((0.0f64, 0.0f64), |(st, ad), _| {
        (
            st.max(measure_policy_ab(false, ab_msgs)),
            ad.max(measure_policy_ab(true, ab_msgs)),
        )
    });

    // Handoff-latency percentiles: context post → execution, split into the
    // all-threads view and the commthread-only view.
    let ((ctx_p50, ctx_p99), (ct_p50, ct_p99)) = measure_handoff_percentiles(256);

    // Telemetry on/off delta: spawn the probes-compiled-out build of this
    // binary (or honor MSGRATE_RATE_TELEMETRY_OFF) and record the overhead.
    // On failure, record the reason — never a bare null without explanation.
    // Throughput on a shared host drifts over the minutes this binary runs,
    // so the on-arm is re-measured immediately after the off-arm returns and
    // the overhead is computed from the temporally adjacent pair.
    let telemetry_enabled = bgq_upc::ENABLED;
    let off_arm = if telemetry_enabled {
        telemetry_off_rate(msgs)
    } else {
        Err("skipped: this build already has telemetry compiled out".to_string())
    };
    let single_adjacent = if off_arm.is_ok() { best(1, msgs) } else { single };
    let (off_rate_json, overhead_json, overhead_ns_json, off_skip_json) = match &off_arm {
        Ok(off) if *off > 0.0 && single_adjacent > 0.0 => (
            format!("{off:.1}"),
            format!("{:.3}", (off - single_adjacent) / off * 100.0),
            // Absolute cost: the per-message time delta between the two
            // adjacent arms, in nanoseconds (negative = measurement noise
            // larger than the probes' cost).
            format!("{:.2}", (1.0 / single_adjacent - 1.0 / off) * 1e9),
            "null".to_string(),
        ),
        Ok(off) => (
            "null".to_string(),
            "null".to_string(),
            "null".to_string(),
            format!("\"skipped: off-arm rate not positive ({off})\""),
        ),
        Err(reason) => (
            "null".to_string(),
            "null".to_string(),
            "null".to_string(),
            format!("{reason:?}"),
        ),
    };

    // Scaling ratchet: multi-context must not fall below single-context.
    // The comparison is only meaningful with CPU critical-path accounting
    // or enough cores to actually run the contexts in parallel: a
    // wall-clock aggregate on a host with fewer cores than contexts is
    // scheduler-bound by construction (DESIGN.md §10) and can never beat
    // a single-context rate that runs uninterrupted — schedstat deltas
    // also round to zero on very short smoke runs, which is what forces
    // the wall-clock fallback there.
    let mode = ratchet_mode_for("mode");
    let gate_measurable =
        by_ctx(multi_ctx).cpu_rate.is_some() || host_cores >= multi_ctx;
    let gate_ok = multi >= single;

    // Short-tier ratchet: the inline envelope must actually pay off at the
    // cutoff. Runs enforced (`ci/scaling_ratchet.json`); flipping the file
    // entry back to `report` downgrades a violation to a printed warning.
    let short_mode = ratchet_mode_for("short_gate");
    let short_gate_ok = short_ratio >= SHORT_GATE_MIN_RATIO;
    let persistent_tail_ok = tail_ratio > 0.0 && tail_ratio <= PERSISTENT_TAIL_BUDGET;

    // Aggregation ratchet: the coalesced arm must beat the short tier on
    // the random-target flood *and* prove it actually batched. The batch
    // check needs the telemetry counters, so it only applies when the
    // probes are compiled in.
    let aggr_mode = ratchet_mode_for("aggr_gate");
    let aggr_min_ratio = ratchet_number_for("aggr_gate_min_ratio", AGGR_GATE_MIN_RATIO);
    let aggr_batch_ok = !bgq_upc::ENABLED || aggr_mean_batch > AGGR_GATE_MIN_BATCH;
    let aggr_gate_ok = aggr_ratio >= aggr_min_ratio && aggr_batch_ok;

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|s| {
            format!(
                "    {{\"contexts\": {}, \"msgs_per_context\": {}, \"wall_rate\": {:.1}, \"cpu_rate\": {}, \"max_thread_cpu_ns\": {}}}",
                s.contexts,
                s.msgs_per_context,
                s.wall_rate,
                json_f64_opt(s.cpu_rate),
                s.max_thread_cpu_ns
                    .map_or("null".to_string(), |v| v.to_string()),
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"msgrate\",\n  \"msgs\": {msgs},\n  \"accounting\": \"{accounting}\",\n  \"host_cores\": {host_cores},\n  \"seed_rate\": {SEED_RATE:.1},\n  \"single_context_rate\": {single:.1},\n  \"rate_vs_seed\": {ratio:.3},\n  \"short_cutoff_bytes\": {short_cutoff},\n  \"short_rate\": {short_rate:.1},\n  \"eager_rate_at_128B\": {eager_rate_at_cutoff:.1},\n  \"short_vs_eager_ratio\": {short_ratio:.3},\n  \"short_gate_mode\": \"{short_mode_str}\",\n  \"short_gate_min_ratio\": {SHORT_GATE_MIN_RATIO},\n  \"short_gate_ok\": {short_gate_ok},\n  \"aggr_msgs\": {aggr_gate_msgs},\n  \"aggr_on_rate\": {aggr_on_rate:.1},\n  \"aggr_off_rate\": {aggr_off_rate:.1},\n  \"aggr_ratio\": {aggr_ratio:.3},\n  \"aggr_frames\": {aggr_frames},\n  \"aggr_mean_batch\": {aggr_mean_batch:.2},\n  \"aggr_gate_mode\": \"{aggr_mode_str}\",\n  \"aggr_gate_min_ratio\": {aggr_min_ratio},\n  \"aggr_gate_min_batch\": {AGGR_GATE_MIN_BATCH},\n  \"aggr_gate_ok\": {aggr_gate_ok},\n  \"persistent_iters\": {halo_iters},\n  \"persistent_iter_p50_ns\": {halo_p50},\n  \"persistent_iter_p99_ns\": {halo_p99},\n  \"persistent_iter_mean_ns\": {halo_mean:.1},\n  \"persistent_tail_ratio\": {tail_ratio:.3},\n  \"persistent_tail_budget\": {PERSISTENT_TAIL_BUDGET},\n  \"persistent_tail_ok\": {persistent_tail_ok},\n  \"persistent_match_events\": {halo_match},\n  \"persistent_ladder_sends\": {halo_ladder},\n  \"learned_short_crossover\": {learned_short},\n  \"learned_eager_crossover\": {learned_eager},\n  \"multi_context_threads\": {multi_ctx},\n  \"multi_context_rate\": {multi:.1},\n  \"sixteen_context_rate\": {sixteen:.1},\n  \"sixteen_ppn_wall_rate\": {sixteen_ppn_wall:.1},\n  \"context_sweep\": [\n{sweep_body}\n  ],\n  \"scaling_gate_mode\": \"{mode_str}\",\n  \"scaling_gate_measurable\": {gate_measurable},\n  \"scaling_gate_ok\": {gate_ok},\n  \"eager_half_rtt_us\": {lat_us:.3},\n  \"seed_copies_per_eager_msg\": {SEED_COPIES_PER_MSG},\n  \"copies_per_eager_msg\": {copies},\n  \"policy_ab_msgs\": {ab_msgs},\n  \"policy_static_rate\": {policy_static:.1},\n  \"policy_adaptive_rate\": {policy_adaptive:.1},\n  \"policy_adaptive_vs_static\": {policy_ratio:.3},\n  \"ctx_handoff_p50_ns\": {ctx_p50},\n  \"ctx_handoff_p99_ns\": {ctx_p99},\n  \"commthread_handoff_p50_ns\": {ct_p50},\n  \"commthread_handoff_p99_ns\": {ct_p99},\n  \"telemetry_enabled\": {telemetry_enabled},\n  \"telemetry_on_adjacent_rate\": {single_adjacent:.1},\n  \"telemetry_off_rate\": {off_rate_json},\n  \"telemetry_overhead_pct\": {overhead_json},\n  \"telemetry_overhead_ns_per_msg\": {overhead_ns_json},\n  \"telemetry_off_skipped\": {off_skip_json}\n}}\n",
        ratio = if SEED_RATE > 0.0 { single / SEED_RATE } else { 0.0 },
        short_mode_str = short_mode.as_str(),
        aggr_on_rate = aggr_on.rate,
        aggr_frames = aggr_on.frames,
        aggr_mode_str = aggr_mode.as_str(),
        halo_iters = halo.iters,
        halo_p50 = halo.p50_ns,
        halo_p99 = halo.p99_ns,
        halo_mean = halo.mean_ns,
        halo_match = halo.match_events,
        halo_ladder = halo.ladder_sends,
        sweep_body = sweep_json.join(",\n"),
        mode_str = mode.as_str(),
        lat_us = latency * 1e6,
        policy_ratio = if policy_static > 0.0 { policy_adaptive / policy_static } else { 0.0 },
    );
    print!("{json}");
    std::fs::write("BENCH_msgrate.json", json).expect("write BENCH_msgrate.json");

    // pamistat: a whole-stack sample workload whose single UPC registry
    // snapshot covers every instrumented layer, plus the merged
    // chrome://tracing timeline. Skipped when the probes are compiled out
    // (the report would be empty).
    if telemetry_enabled {
        let (report, trace, ras) = pamistat_sample();
        std::fs::write("telemetry.json", &report).expect("write telemetry.json");
        std::fs::write("telemetry_trace.json", &trace).expect("write telemetry_trace.json");
        std::fs::write("telemetry_ras.jsonl", &ras).expect("write telemetry_ras.jsonl");
        println!("pamistat: wrote telemetry.json + telemetry_trace.json + telemetry_ras.jsonl");
    } else {
        println!("pamistat: telemetry feature compiled out; no report");
    }

    // Short-tier gate: enforced per the ratchet file entry.
    match (short_mode, short_gate_ok) {
        (RatchetMode::Report, true) => println!(
            "short gate (report): short {short_rate:.0} >= {SHORT_GATE_MIN_RATIO}x \
             eager-at-{short_cutoff}B {eager_rate_at_cutoff:.0} (ratio {short_ratio:.2})"
        ),
        (RatchetMode::Report, false) => eprintln!(
            "short gate (report): short_rate {short_rate:.0} < {SHORT_GATE_MIN_RATIO}x \
             eager_rate_at_128B {eager_rate_at_cutoff:.0} (ratio {short_ratio:.2})"
        ),
        (RatchetMode::Enforce, true) => println!("short gate (enforce): ok"),
        (RatchetMode::Enforce, false) => {
            eprintln!(
                "short gate FAILED: short_rate {short_rate:.0} < {SHORT_GATE_MIN_RATIO}x \
                 eager_rate_at_128B {eager_rate_at_cutoff:.0} (mode=enforce)"
            );
            std::process::exit(1);
        }
    }
    // Aggregation gate: report mode until the ratio proves stable on CI
    // hosts, then the file entry is flipped to enforce by hand.
    let aggr_detail = format!(
        "aggr {on:.0} vs short-tier {off:.0} (ratio {aggr_ratio:.2}, \
         mean batch {aggr_mean_batch:.1})",
        on = aggr_on.rate,
        off = aggr_off_rate,
    );
    match (aggr_mode, aggr_gate_ok) {
        (RatchetMode::Report, true) => println!("aggr gate (report): {aggr_detail}"),
        (RatchetMode::Report, false) => eprintln!(
            "aggr gate (report): {aggr_detail} below ratio {aggr_min_ratio} \
             or batch {AGGR_GATE_MIN_BATCH}"
        ),
        (RatchetMode::Enforce, true) => println!("aggr gate (enforce): ok"),
        (RatchetMode::Enforce, false) => {
            eprintln!(
                "aggr gate FAILED: {aggr_detail} below ratio {aggr_min_ratio} \
                 or batch {AGGR_GATE_MIN_BATCH} (mode=enforce)"
            );
            std::process::exit(1);
        }
    }

    if !persistent_tail_ok {
        eprintln!(
            "persistent halo tail (report): p99/p50 {tail_ratio:.2} exceeds \
             {PERSISTENT_TAIL_BUDGET} (p50 {p50} ns, p99 {p99} ns)",
            p50 = halo.p50_ns,
            p99 = halo.p99_ns,
        );
    }

    // Ratchet state machine: report+pass flips the file to enforce so the
    // win is locked in (the short gate's mode rides along unchanged);
    // enforce+fail is a hard CI failure. An unmeasurable comparison
    // (wall-clock fallback on a host with fewer cores than contexts)
    // neither flips nor fails — the number it would gate on is
    // scheduler noise, not a scaling regression.
    if !gate_measurable {
        println!(
            "scaling ratchet ({}): skipped — wall-clock accounting on a \
             {host_cores}-core host cannot rank {multi_ctx} contexts against one \
             (multi {multi:.0}, single {single:.0})",
            mode.as_str(),
        );
        return;
    }
    match (mode, gate_ok) {
        (RatchetMode::Report, true) => {
            if write_ratchet(RatchetMode::Enforce, short_mode).is_ok() {
                println!(
                    "scaling ratchet: multi {multi:.0} >= single {single:.0}; \
                     flipped {RATCHET_PATH} to enforce"
                );
            }
        }
        (RatchetMode::Report, false) => {
            eprintln!(
                "scaling ratchet (report): multi_context_rate {multi:.0} < \
                 single_context_rate {single:.0}"
            );
        }
        (RatchetMode::Enforce, true) => {
            println!("scaling ratchet (enforce): ok");
        }
        (RatchetMode::Enforce, false) => {
            eprintln!(
                "scaling ratchet FAILED: multi_context_rate {multi:.0} < \
                 single_context_rate {single:.0} (mode=enforce)"
            );
            std::process::exit(1);
        }
    }
}
