//! Message-rate regression harness for the MU fast path.
//!
//! Emits `BENCH_msgrate.json` in the repo root with the functional
//! (measured) message rates on this host:
//!
//! * single-context eager message rate (one producer context per node),
//! * 16-context aggregate message rate (16 processes per node),
//! * eager half-round-trip latency,
//! * payload copy counts observed by the MU for the eager memory-FIFO path.
//!
//! `seed_rate` records the single-context rate measured on the pre-zero-copy
//! tree (commit 281ce36 lineage) on this same host, so the JSON is a
//! self-contained before/after record of the hot-path overhaul.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::{Client, Context, Endpoint, Machine, MemRegion, PayloadSource, Recv, SendArgs};
use pami_bench::{measure_message_rate, measure_pami_half_rtt, MeasuredRateSeries};

/// Single-context eager message rate of the tree *before* the zero-copy,
/// lock-free fast path landed, measured with this same binary (msgs/sec).
const SEED_RATE: f64 = 2_715_000.0;

/// Payload copies per eager region message on the seed tree: one
/// whole-message staging copy at injection plus the receiver's deposit.
const SEED_COPIES_PER_MSG: u64 = 2;

/// End-to-end payload copies for one single-packet eager region message
/// (no local-completion counter — the zero-copy window path), summed over
/// both nodes. The seed tree staged the whole message before fragmenting,
/// making this 2; the zero-copy path's only copy is the receiver's deposit.
fn measure_eager_copies() -> u64 {
    let machine = Machine::with_nodes(2).build();
    let sender = Client::create(&machine, 0, "copies", 1);
    let receiver = Client::create(&machine, 1, "copies", 1);
    let got = Arc::new(AtomicU64::new(0));
    let sink = MemRegion::zeroed(256);
    {
        let got = Arc::clone(&got);
        let sink = sink.clone();
        receiver.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                let got = Arc::clone(&got);
                Recv::Into {
                    region: sink.clone(),
                    offset: 0,
                    on_complete: Box::new(move |_| {
                        got.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            }),
        );
    }
    sender.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: 1,
        metadata: Vec::new(),
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(vec![42u8; 256]),
            offset: 0,
            len: 256,
        },
        local_done: None,
    });
    while got.load(Ordering::Relaxed) < 1 {
        sender.context(0).advance();
        receiver.context(0).advance();
    }
    machine.fabric().stats(0).payload_copies + machine.fabric().stats(1).payload_copies
}

fn main() {
    let msgs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000usize);

    // Warm-up pass so allocator and page-cache effects do not skew run 1.
    let _ = measure_message_rate(MeasuredRateSeries::Pami, 1, msgs / 10);

    let best = |ppn: usize, msgs: usize| -> f64 {
        (0..3)
            .map(|_| measure_message_rate(MeasuredRateSeries::Pami, ppn, msgs))
            .fold(0.0f64, f64::max)
    };

    let single = best(1, msgs);
    let sixteen = best(16, msgs / 16);
    let latency = measure_pami_half_rtt(false, 8, 2000).as_secs_f64();
    let copies = measure_eager_copies();

    let json = format!(
        "{{\n  \"bench\": \"msgrate\",\n  \"msgs\": {msgs},\n  \"seed_rate\": {SEED_RATE:.1},\n  \"single_context_rate\": {single:.1},\n  \"rate_vs_seed\": {ratio:.3},\n  \"sixteen_context_rate\": {sixteen:.1},\n  \"eager_half_rtt_us\": {lat_us:.3},\n  \"seed_copies_per_eager_msg\": {SEED_COPIES_PER_MSG},\n  \"copies_per_eager_msg\": {copies}\n}}\n",
        ratio = if SEED_RATE > 0.0 { single / SEED_RATE } else { 0.0 },
        lat_us = latency * 1e6,
    );
    print!("{json}");
    std::fs::write("BENCH_msgrate.json", json).expect("write BENCH_msgrate.json");
}
