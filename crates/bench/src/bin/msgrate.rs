//! Message-rate regression harness for the MU fast path.
//!
//! Emits `BENCH_msgrate.json` in the repo root with the functional
//! (measured) message rates on this host:
//!
//! * single-context eager message rate (one producer context per node),
//! * 16-context aggregate message rate (16 processes per node),
//! * multi-context rate (N contexts, N sender threads — paper Figure 5 shape),
//! * eager half-round-trip latency,
//! * payload copy counts observed by the MU for the eager memory-FIFO path,
//! * adaptive-vs-static protocol-policy A/B on a mixed-size workload,
//! * `ctx.handoff_ns` / `commthread.handoff_ns` p50/p99 (post → execution),
//! * telemetry overhead: the same rate with the UPC probes compiled out
//!   (fed in via `MSGRATE_RATE_TELEMETRY_OFF` from a
//!   `--no-default-features` run of this binary).
//!
//! When the `telemetry` feature is on, the run also emits the `pamistat`
//! report pair: `telemetry.json` (counters + histogram summaries from every
//! layer: `mu.*`, `ctx.*`, `match.*`, `coll.*`, `commthread.*`) and
//! `telemetry_trace.json` (chrome://tracing timeline).
//!
//! `seed_rate` records the single-context rate measured on the pre-zero-copy
//! tree (commit 281ce36 lineage) on this same host, so the JSON is a
//! self-contained before/after record of the hot-path overhaul.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::{Client, Context, Endpoint, Machine, MemRegion, PayloadSource, Recv, SendArgs};
use pami_bench::{
    measure_handoff_percentiles, measure_message_rate, measure_message_rate_multi,
    measure_pami_half_rtt, measure_policy_ab, pamistat_sample, MeasuredRateSeries,
};

/// Single-context eager message rate of the tree *before* the zero-copy,
/// lock-free fast path landed, measured with this same binary (msgs/sec).
const SEED_RATE: f64 = 2_715_000.0;

/// Payload copies per eager region message on the seed tree: one
/// whole-message staging copy at injection plus the receiver's deposit.
const SEED_COPIES_PER_MSG: u64 = 2;

/// End-to-end payload copies for one single-packet eager region message
/// (no local-completion counter — the zero-copy window path), summed over
/// both nodes. The seed tree staged the whole message before fragmenting,
/// making this 2; the zero-copy path's only copy is the receiver's deposit.
/// Reads the UPC `mu.payload_copies` counters, so it is only meaningful
/// when the `telemetry` feature is compiled in (0 otherwise).
fn measure_eager_copies() -> u64 {
    let machine = Machine::with_nodes(2).build();
    let sender = Client::create(&machine, 0, "copies", 1);
    let receiver = Client::create(&machine, 1, "copies", 1);
    let got = Arc::new(AtomicU64::new(0));
    let sink = MemRegion::zeroed(256);
    {
        let got = Arc::clone(&got);
        let sink = sink.clone();
        receiver.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                let got = Arc::clone(&got);
                Recv::Into {
                    region: sink.clone(),
                    offset: 0,
                    on_complete: Box::new(move |_, _result| {
                        got.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            }),
        );
    }
    sender.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: 1,
        metadata: Vec::new(),
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(vec![42u8; 256]),
            offset: 0,
            len: 256,
        },
        local_done: None,
    }).unwrap();
    while got.load(Ordering::Relaxed) < 1 {
        sender.context(0).advance();
        receiver.context(0).advance();
    }
    machine.fabric().counters(0).payload_copies.value()
        + machine.fabric().counters(1).payload_copies.value()
}

fn main() {
    let msgs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000usize);

    // Warm-up pass so allocator and page-cache effects do not skew run 1.
    let _ = measure_message_rate(MeasuredRateSeries::Pami, 1, msgs / 10);

    let best = |ppn: usize, msgs: usize| -> f64 {
        (0..3)
            .map(|_| measure_message_rate(MeasuredRateSeries::Pami, ppn, msgs))
            .fold(0.0f64, f64::max)
    };

    let single = best(1, msgs);
    let sixteen = best(16, msgs / 16);
    let multi_ctx = 4usize;
    let multi = (0..3)
        .map(|_| measure_message_rate_multi(multi_ctx, (msgs / multi_ctx).max(1)))
        .fold(0.0f64, f64::max);
    let latency = measure_pami_half_rtt(false, 8, 2000).as_secs_f64();
    let copies = measure_eager_copies();

    // Protocol-policy A/B: the same mixed-size workload (256 B + 16 KiB
    // streams) under the static crossover and the adaptive per-destination
    // policy. Best-of-3 each, interleaved so host noise hits both arms.
    let ab_msgs = (msgs / 6).max(500);
    let (policy_static, policy_adaptive) = (0..3).fold((0.0f64, 0.0f64), |(st, ad), _| {
        (
            st.max(measure_policy_ab(false, ab_msgs)),
            ad.max(measure_policy_ab(true, ab_msgs)),
        )
    });

    // Handoff-latency percentiles: context post → execution, split into the
    // all-threads view and the commthread-only view.
    let ((ctx_p50, ctx_p99), (ct_p50, ct_p99)) = measure_handoff_percentiles(256);

    // Telemetry on/off delta. A `--no-default-features` build of this binary
    // exports its single-context rate via MSGRATE_RATE_TELEMETRY_OFF so the
    // default (telemetry-on) run can record the overhead in one JSON file.
    let telemetry_enabled = bgq_upc::ENABLED;
    let off_rate: Option<f64> = std::env::var("MSGRATE_RATE_TELEMETRY_OFF")
        .ok()
        .and_then(|v| v.parse().ok());
    let (off_rate_json, overhead_json) = match off_rate {
        Some(off) if off > 0.0 => (
            format!("{off:.1}"),
            format!("{:.3}", (off - single) / off * 100.0),
        ),
        _ => ("null".to_string(), "null".to_string()),
    };

    let json = format!(
        "{{\n  \"bench\": \"msgrate\",\n  \"msgs\": {msgs},\n  \"seed_rate\": {SEED_RATE:.1},\n  \"single_context_rate\": {single:.1},\n  \"rate_vs_seed\": {ratio:.3},\n  \"sixteen_context_rate\": {sixteen:.1},\n  \"multi_context_threads\": {multi_ctx},\n  \"multi_context_rate\": {multi:.1},\n  \"eager_half_rtt_us\": {lat_us:.3},\n  \"seed_copies_per_eager_msg\": {SEED_COPIES_PER_MSG},\n  \"copies_per_eager_msg\": {copies},\n  \"policy_ab_msgs\": {ab_msgs},\n  \"policy_static_rate\": {policy_static:.1},\n  \"policy_adaptive_rate\": {policy_adaptive:.1},\n  \"policy_adaptive_vs_static\": {policy_ratio:.3},\n  \"ctx_handoff_p50_ns\": {ctx_p50},\n  \"ctx_handoff_p99_ns\": {ctx_p99},\n  \"commthread_handoff_p50_ns\": {ct_p50},\n  \"commthread_handoff_p99_ns\": {ct_p99},\n  \"telemetry_enabled\": {telemetry_enabled},\n  \"telemetry_off_rate\": {off_rate_json},\n  \"telemetry_overhead_pct\": {overhead_json}\n}}\n",
        ratio = if SEED_RATE > 0.0 { single / SEED_RATE } else { 0.0 },
        lat_us = latency * 1e6,
        policy_ratio = if policy_static > 0.0 { policy_adaptive / policy_static } else { 0.0 },
    );
    print!("{json}");
    std::fs::write("BENCH_msgrate.json", json).expect("write BENCH_msgrate.json");

    // pamistat: a whole-stack sample workload whose single UPC registry
    // snapshot covers every instrumented layer, plus the merged
    // chrome://tracing timeline. Skipped when the probes are compiled out
    // (the report would be empty).
    if telemetry_enabled {
        let (report, trace) = pamistat_sample();
        std::fs::write("telemetry.json", &report).expect("write telemetry.json");
        std::fs::write("telemetry_trace.json", &trace).expect("write telemetry_trace.json");
        println!("pamistat: wrote telemetry.json + telemetry_trace.json");
    } else {
        println!("pamistat: telemetry feature compiled out; no report");
    }
}
