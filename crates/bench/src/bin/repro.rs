//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--modeled-only]
//!   experiment ∈ table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 policy all
//! ```
//!
//! Each experiment prints the paper's published numbers, the timing-model
//! values at paper scale (`modeled`), and — where a laptop can host the
//! functional stack — real wall-clock numbers from this workspace's
//! PAMI/MPI implementation (`measured`, host-scaled configuration).

use bgq_netsim::{coll, p2p, MachineParams};
use pami_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let modeled_only = args.iter().any(|a| a == "--modeled-only");
    let params = MachineParams::default();
    match experiment {
        "table1" => table1(&params, modeled_only),
        "table2" => table2(&params, modeled_only),
        "table3" => table3(&params, modeled_only),
        "fig5" => fig5(&params, modeled_only),
        "fig6" => fig6(&params),
        "fig7" => fig7(&params),
        "fig8" => fig8(&params),
        "fig9" => fig9(&params),
        "fig10" => fig10(&params),
        "policy" => policy_ab(modeled_only),
        "all" => {
            table1(&params, modeled_only);
            table2(&params, modeled_only);
            table3(&params, modeled_only);
            fig5(&params, modeled_only);
            fig6(&params);
            fig7(&params);
            fig8(&params);
            fig9(&params);
            fig10(&params);
            policy_ab(modeled_only);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!("usage: repro [table1|table2|table3|fig5|fig6|fig7|fig8|fig9|fig10|policy|all] [--modeled-only]");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

fn table1(params: &MachineParams, modeled_only: bool) {
    header("Table 1: PAMI half round trip, 0B message");
    println!("{:<22}{:>12}{:>12}{:>14}", "call", "paper", "modeled", "measured");
    for (label, imm, paper) in [
        ("PAMI_Send_immediate", true, 1.18e-6),
        ("PAMI_Send", false, 1.32e-6),
    ] {
        let modeled = if imm {
            p2p::pami_send_immediate_latency(params, 0)
        } else {
            p2p::pami_send_latency(params, 0)
        };
        let measured = if modeled_only {
            "-".to_string()
        } else {
            us(measure_pami_half_rtt(imm, 0, 2000).as_secs_f64())
        };
        println!("{:<22}{:>12}{:>12}{:>14}", label, us(paper), us(modeled), measured);
    }
}

fn table2(params: &MachineParams, modeled_only: bool) {
    header("Table 2: MPI half round trip, 0B message");
    println!(
        "{:<52}{:>10}{:>10}{:>12}",
        "configuration", "paper", "modeled", "measured"
    );
    let rows = [
        (Table2Row { thread_optimized: false, thread_multiple: false, commthreads: false }, 1.95e-6),
        (Table2Row { thread_optimized: false, thread_multiple: true, commthreads: false }, 2.28e-6),
        (Table2Row { thread_optimized: false, thread_multiple: true, commthreads: true }, 8.7e-6),
        (Table2Row { thread_optimized: true, thread_multiple: true, commthreads: false }, 2.96e-6),
        (Table2Row { thread_optimized: true, thread_multiple: true, commthreads: true }, 3.25e-6),
        (Table2Row { thread_optimized: true, thread_multiple: false, commthreads: false }, 2.5e-6),
    ];
    for (row, paper) in rows {
        let modeled = p2p::mpi_latency(
            params,
            p2p::MpiLatencyConfig {
                thread_optimized: row.thread_optimized,
                thread_multiple: row.thread_multiple,
                commthreads: row.commthreads,
            },
            0,
        );
        let measured = if modeled_only {
            "-".to_string()
        } else {
            us(measure_mpi_half_rtt(row, 1000).as_secs_f64())
        };
        println!("{:<52}{:>10}{:>10}{:>12}", row.label(), us(paper), us(modeled), measured);
    }
}

fn table3(params: &MachineParams, modeled_only: bool) {
    header("Table 3: MPI neighbor send+receive throughput, 1MB messages");
    println!(
        "{:<12}{:>14}{:>14}{:>14}{:>14}{:>16}{:>16}",
        "neighbors", "paper eager", "paper rzv", "model eager", "model rzv", "measured eager", "measured rzv"
    );
    let paper = [(1, 3267.0, 3333.0), (2, 3360.0, 6625.0), (4, 6676.0, 13139.0), (10, 8467.0, 32355.0)];
    for (k, pe, pr) in paper {
        let me = p2p::eager_neighbor_throughput(params, k, 1 << 20);
        let mr = p2p::rendezvous_neighbor_throughput(params, k, 1 << 20);
        let (meas_e, meas_r) = if modeled_only || k > 4 {
            // The host machine cannot place 10 neighbors on distinct links;
            // the functional run covers k ≤ 4.
            ("-".to_string(), "-".to_string())
        } else {
            (
                mbs(measure_neighbor_throughput(k, 1 << 20, true, 4)),
                mbs(measure_neighbor_throughput(k, 1 << 20, false, 4)),
            )
        };
        println!(
            "{:<12}{:>14}{:>14}{:>14}{:>14}{:>16}{:>16}",
            k,
            format!("{pe:.0}MB/s"),
            format!("{pr:.0}MB/s"),
            mbs(me),
            mbs(mr),
            meas_e,
            meas_r
        );
    }
}

fn fig5(params: &MachineParams, modeled_only: bool) {
    header("Figure 5: message rate on 32 nodes (MMPS)");
    println!(
        "{:<6}{:>12}{:>12}{:>16}{:>18}",
        "ppn", "PAMI", "MPI", "MPI+commthr", "MPI+commthr(wild)"
    );
    for ppn in [1usize, 2, 4, 8, 16, 32] {
        let pami = p2p::message_rate(params, p2p::RateSeries::Pami, ppn);
        let mpi = p2p::message_rate(params, p2p::RateSeries::Mpi, ppn);
        let (ct, wild) = if ppn <= 16 {
            (
                mmps(p2p::message_rate(params, p2p::RateSeries::MpiCommthreads, ppn)),
                mmps(p2p::message_rate(params, p2p::RateSeries::MpiCommthreadsWildcard, ppn)),
            )
        } else {
            // "Right now, we do not enable communication threads at 32
            // processes per node."
            ("-".to_string(), "-".to_string())
        };
        println!("{:<6}{:>12}{:>12}{:>16}{:>18}", ppn, mmps(pami), mmps(mpi), ct, wild);
    }
    println!("paper peaks: PAMI 107 MMPS @32ppn; MPI 22.9 MMPS @32ppn; best commthread 18.7 MMPS @16ppn; 2.4x speedup @1ppn");
    if !modeled_only {
        println!();
        println!("measured (functional stack, 2 nodes, host-scaled):");
        println!("{:<6}{:>12}{:>12}{:>14}", "ppn", "PAMI", "MPI", "MPI(wildcard)");
        for ppn in [1usize, 2, 4] {
            let pami = measure_message_rate(MeasuredRateSeries::Pami, ppn, 3000);
            let mpi = measure_message_rate(MeasuredRateSeries::MpiNamed, ppn, 3000);
            let wild = measure_message_rate(MeasuredRateSeries::MpiWildcard, ppn, 3000);
            println!("{:<6}{:>12}{:>12}{:>14}", ppn, mmps(pami), mmps(mpi), mmps(wild));
        }
    }
}

fn fig6(params: &MachineParams) {
    header("Figure 6: MPI_Barrier latency vs nodes (GI network)");
    println!("{:<8}{:>12}{:>12}{:>12}", "nodes", "ppn=1", "ppn=4", "ppn=16");
    for nodes in [32usize, 64, 128, 256, 512, 1024, 2048] {
        println!(
            "{:<8}{:>12}{:>12}{:>12}",
            nodes,
            us(coll::barrier_latency(params, nodes, 1)),
            us(coll::barrier_latency(params, nodes, 4)),
            us(coll::barrier_latency(params, nodes, 16)),
        );
    }
    println!("paper @2048: 2.7us / 4.0us / 4.2us");
}

fn fig7(params: &MachineParams) {
    header("Figure 7: MPI_Allreduce (1 double, sum) latency vs nodes");
    println!("{:<8}{:>12}{:>12}{:>12}", "nodes", "ppn=1", "ppn=4", "ppn=16");
    for nodes in [32usize, 64, 128, 256, 512, 1024, 2048] {
        println!(
            "{:<8}{:>12}{:>12}{:>12}",
            nodes,
            us(coll::allreduce_latency(params, nodes, 1)),
            us(coll::allreduce_latency(params, nodes, 4)),
            us(coll::allreduce_latency(params, nodes, 16)),
        );
    }
    println!("paper @2048: 5.5us / 5.0us / 5.3us");
}

fn size_sweep() -> Vec<usize> {
    (13..=25).map(|p| 1usize << p).collect() // 8 KB .. 32 MB
}

fn fig8(params: &MachineParams) {
    header("Figure 8: MPI_Allreduce throughput on 2048 nodes (double sum)");
    println!("{:<10}{:>12}{:>12}{:>12}", "size", "ppn=1", "ppn=4", "ppn=16");
    for size in size_sweep() {
        println!(
            "{:<10}{:>12}{:>12}{:>12}",
            format!("{}KB", size / 1024),
            mbs(coll::allreduce_throughput(params, 2048, 1, size)),
            mbs(coll::allreduce_throughput(params, 2048, 4, size)),
            mbs(coll::allreduce_throughput(params, 2048, 16, size)),
        );
    }
    println!("paper peaks: 1704MB/s @8MB ppn1 (95%); 1693MB/s @2MB ppn4; 1643MB/s @512KB ppn16");
}

fn fig9(params: &MachineParams) {
    header("Figure 9: MPI_Bcast throughput via collective network, 2048 nodes");
    println!("{:<10}{:>12}{:>12}{:>12}", "size", "ppn=1", "ppn=4", "ppn=16");
    for size in size_sweep() {
        println!(
            "{:<10}{:>12}{:>12}{:>12}",
            format!("{}KB", size / 1024),
            mbs(coll::broadcast_throughput(params, 2048, 1, size)),
            mbs(coll::broadcast_throughput(params, 2048, 4, size)),
            mbs(coll::broadcast_throughput(params, 2048, 16, size)),
        );
    }
    println!("paper peaks: 1728MB/s @32MB ppn1 (96%); 1722MB/s @4MB ppn4; 1701MB/s @1MB ppn16");
}

fn policy_ab(modeled_only: bool) {
    header("Protocol policy: adaptive vs static eager/rendezvous crossover");
    println!("mixed 256B + 16KiB streams, 2 destinations, functional stack (host-scaled)");
    if modeled_only {
        println!("(measurement skipped: --modeled-only)");
        return;
    }
    let msgs = 3000;
    let (stat, adap) = (0..3).fold((0.0f64, 0.0f64), |(s, a), _| {
        (
            s.max(measure_policy_ab(false, msgs)),
            a.max(measure_policy_ab(true, msgs)),
        )
    });
    println!("{:<28}{:>12}", "policy", "rate");
    println!("{:<28}{:>12}", "static crossover", mmps(stat));
    println!("{:<28}{:>12}", "adaptive per-destination", mmps(adap));
    if stat > 0.0 {
        println!("adaptive/static: {:.3}x", adap / stat);
    }
    println!("(with the telemetry feature compiled out the adaptive policy degenerates");
    println!(" to the static crossover and the two arms tie)");
}

fn fig10(params: &MachineParams) {
    header("Figure 10: 10-color rectangle broadcast throughput, 2048 nodes");
    println!("{:<10}{:>12}{:>12}{:>12}", "size", "ppn=1", "ppn=4", "ppn=16");
    for size in size_sweep() {
        println!(
            "{:<10}{:>12}{:>12}{:>12}",
            format!("{}KB", size / 1024),
            mbs(coll::rect_broadcast_throughput(params, 2048, 1, size)),
            mbs(coll::rect_broadcast_throughput(params, 2048, 4, size)),
            mbs(coll::rect_broadcast_throughput(params, 2048, 16, size)),
        );
    }
    println!("paper peak: 16.9GB/s @ppn1 (94% of 18GB/s); copy-rate limited at ppn 4/16");
}
