//! `collgate` — the CI regression gate for collective per-phase latency.
//!
//! Runs a fixed hardware-collective workload (optimized world on a 2×2
//! functional machine: barrier + allreduce + bcast rounds), reads the
//! per-phase `coll.*` histograms from the machine's UPC registry, and
//! writes the p50 of each phase to `BENCH_coll.json`. The interesting
//! split is the one the paper optimizes: the shared-address **local**
//! combine phase vs the collective-network **network** phase.
//!
//! ```text
//! collgate [--baseline FILE] [--update] [--rounds N]
//! ```
//!
//! With `--baseline` (CI default: `ci/BENCH_coll_baseline.json`) the run
//! compares each phase p50 against the committed baseline and exits 1 when
//! any phase regressed by more than the tolerance (10%, overridable via
//! `COLLGATE_TOLERANCE_PCT`). Each phase takes the best (minimum) p50 of
//! three full runs so scheduler noise must hit all three to fail the gate.
//! `--update` rewrites the baseline file from this run. With the
//! `telemetry` feature compiled out every histogram is empty, so the gate
//! prints a notice and passes.

use pami_bench::report;

/// The gated phases. `barrier_ns` covers the GI+L2 path end to end; the
/// allreduce pair splits the shared-address local combine from the
/// collective-network reduction; `bcast.network_ns` is the leader
/// inject/receive phase of the hardware broadcast.
const PHASES: [&str; 4] = [
    "coll.barrier_ns",
    "coll.allreduce.local_ns",
    "coll.allreduce.network_ns",
    "coll.bcast.network_ns",
];

fn run_once(rounds: usize) -> Vec<(&'static str, u64)> {
    use bgq_hw::MemRegion;
    use pami::Machine;
    use pami_mpi::{Mpi, MpiConfig};

    let machine = Machine::with_nodes(2).ppn(2).build();
    machine.run(move |env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        env.machine.task_barrier();
        let world = mpi.world().clone();
        world.optimize().expect("2-node world is rectangular");
        let size = 64 * 1024;
        let src = MemRegion::zeroed(size);
        let dst = MemRegion::zeroed(size);
        mpi.barrier(&world); // warm + synchronize
        for _ in 0..rounds {
            mpi.barrier(&world);
            mpi.allreduce(
                (&src, 0),
                (&dst, 0),
                size / 8,
                pami::CollOp::Sum,
                pami::DataType::Float64,
                &world,
            );
            mpi.bcast(&src, 0, size, 0, &world);
        }
        mpi.barrier(&world);
    });
    let snap = machine.telemetry().snapshot();
    PHASES
        .iter()
        .map(|&name| (name, snap.histogram(name).map(|h| h.p50).unwrap_or(0)))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut update = false;
    let mut rounds = 40usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().cloned(),
            "--update" => update = true,
            "--rounds" => {
                rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => {
                usage();
            }
        }
    }

    if !bgq_upc::ENABLED {
        println!("collgate: telemetry feature compiled out; per-phase gate skipped");
        return;
    }

    // Best-of-3 per phase: a single noisy run cannot fail the gate.
    let mut best: Vec<(&'static str, u64)> = PHASES.iter().map(|&n| (n, u64::MAX)).collect();
    for _ in 0..3 {
        for (slot, (name, p50)) in best.iter_mut().zip(run_once(rounds)) {
            debug_assert_eq!(slot.0, name);
            slot.1 = slot.1.min(p50);
        }
    }

    let mut json = String::from("{\n  \"bench\": \"collgate\",\n");
    json.push_str(&format!("  \"rounds\": {rounds},\n  \"counters\": {{"));
    for (i, (name, p50)) in best.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\n    \"{name}.p50\": {p50}"));
    }
    json.push_str("\n  }\n}\n");
    print!("{json}");
    std::fs::write("BENCH_coll.json", &json).expect("write BENCH_coll.json");

    let Some(path) = baseline_path else {
        println!("collgate: no --baseline given; wrote BENCH_coll.json only");
        return;
    };
    if update {
        std::fs::write(&path, &json).expect("write baseline");
        println!("collgate: baseline {path} updated");
        return;
    }
    let baseline_text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("collgate: cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline = report::parse(&baseline_text);
    let tolerance: f64 = std::env::var("COLLGATE_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    let mut failed = false;
    println!();
    println!(
        "{:<30}{:>12}{:>12}{:>10}  (tolerance {tolerance:.0}%)",
        "phase p50 (ns)", "baseline", "now", "delta"
    );
    for (name, now) in &best {
        let key = format!("{name}.p50");
        let base = baseline.counter(&key);
        if base == 0 {
            println!("{key:<30}{:>12}{now:>12}{:>10}", "-", "new");
            continue;
        }
        let delta_pct = (*now as f64 - base as f64) / base as f64 * 100.0;
        let verdict = if delta_pct > tolerance {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!("{key:<30}{base:>12}{now:>12}{delta_pct:>+9.1}%  {verdict}");
    }
    if failed {
        eprintln!("collgate: per-phase p50 regression beyond {tolerance:.0}% — failing");
        std::process::exit(1);
    }
    println!("collgate: all phases within tolerance");
}

fn usage() -> ! {
    eprintln!("usage: collgate [--baseline FILE] [--update] [--rounds N]");
    std::process::exit(2);
}
