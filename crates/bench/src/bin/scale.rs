//! Scale bench: endpoint-count curves for the bgq-scale co-simulation.
//!
//! Emits `BENCH_scale.json` in the repo root with, per endpoint count and
//! scenario (incast, all-to-all, and — at [`AGGR_MIN_ENDPOINTS`] endpoints
//! and up — all-to-all with TRAM-style per-destination coalescing, whose
//! points carry the batch telemetry `aggr_frames`/`aggr_mean_batch`):
//!
//! * aggregate wall-clock message rate,
//! * per-endpoint peak memory (VmHWM of an isolated child process divided
//!   by the endpoint count),
//! * p50/p99 `Context::advance` latency over the run,
//! * virtual (DES) time and event count, so modeled network cost is
//!   visible next to host cost,
//!
//! plus one seeded failure-storm arm asserting the zero-silent-loss
//! property (every message arrives or fails its counter with a typed
//! fault).
//!
//! ## Memory accounting
//!
//! Each (endpoint count, scenario) point runs in a *child process* of this
//! same binary (`--child`), so its `VmHWM` is the peak RSS of exactly that
//! run — one allocator, no cross-point contamination. The parent subtracts
//! the smallest point's baseline only implicitly: the curve itself is the
//! deliverable, and the O(1)-per-endpoint claim shows up as
//! `rss_per_endpoint` *falling* with scale (fixed cost amortizes; the
//! marginal cost per endpoint is a single endpoint-table slot).
//!
//! ## Gate
//!
//! The `"scale_gate"` entry of `ci/scaling_ratchet.json` gates two curve
//! shapes: the aggregate rate at the largest point must hold at least
//! [`RATE_RETENTION`] of the smallest point's rate, and per-endpoint peak
//! memory at the largest point must not exceed the previous point's by
//! more than [`MEM_GROWTH_BUDGET`]×. Ships in `report` mode; a human flips
//! the entry to `enforce` once the curve is proven stable on CI hosts.

use bgq_scale::{failure_storm, ScaleConfig, ScaleHarness, Scenario};

const RATCHET_PATH: &str = "ci/scaling_ratchet.json";

/// Default endpoint counts (the `--full` flag appends 1M).
const POINTS: [usize; 4] = [1_000, 10_000, 32_000, 100_000];

/// Scale gate: rate at the largest point vs the smallest.
const RATE_RETENTION: f64 = 0.10;

/// Scale gate: per-endpoint VmHWM at the largest point vs the previous.
const MEM_GROWTH_BUDGET: f64 = 2.0;

/// Storm arm shape (seed chosen once; the plan is deterministic per seed).
const STORM_ENDPOINTS: usize = 4096;
const STORM_SEED: u64 = 0x5CA1E;

/// Smallest point that also runs the aggregated all-to-all arm: below
/// this, per-destination buckets barely fill and the batch telemetry is
/// noise rather than a curve.
const AGGR_MIN_ENDPOINTS: usize = 10_000;

/// One measured (endpoint count, scenario) point, parsed back from the
/// child process.
#[derive(Debug, Clone)]
struct Point {
    scenario: String,
    endpoints: u64,
    nodes: u64,
    sent: u64,
    arrived: u64,
    wall_s: f64,
    virtual_s: f64,
    des_events: u64,
    msg_rate: f64,
    advance_p50_ns: u64,
    advance_p99_ns: u64,
    rss_peak_bytes: u64,
    aggr_frames: u64,
    aggr_batched: u64,
}

impl Point {
    fn rss_per_endpoint(&self) -> f64 {
        self.rss_peak_bytes as f64 / self.endpoints.max(1) as f64
    }

    fn aggr_mean_batch(&self) -> f64 {
        if self.aggr_frames > 0 { self.aggr_batched as f64 / self.aggr_frames as f64 } else { 0.0 }
    }

    fn json(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"endpoints\": {}, \"nodes\": {}, \"sent\": {}, \
             \"arrived\": {}, \"wall_s\": {:.3}, \"virtual_s\": {:.9}, \"des_events\": {}, \
             \"msg_rate\": {:.1}, \"advance_p50_ns\": {}, \"advance_p99_ns\": {}, \
             \"rss_peak_bytes\": {}, \"rss_per_endpoint_bytes\": {:.1}, \
             \"aggr_frames\": {}, \"aggr_batched\": {}, \"aggr_mean_batch\": {:.2}}}",
            self.scenario,
            self.endpoints,
            self.nodes,
            self.sent,
            self.arrived,
            self.wall_s,
            self.virtual_s,
            self.des_events,
            self.msg_rate,
            self.advance_p50_ns,
            self.advance_p99_ns,
            self.rss_peak_bytes,
            self.rss_per_endpoint(),
            self.aggr_frames,
            self.aggr_batched,
            self.aggr_mean_batch(),
        )
    }
}

/// Peak RSS of this process in bytes (`VmHWM` from `/proc/self/status`);
/// 0 when the proc filesystem is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Child mode: run exactly one (scenario, endpoint count) point and print
/// one machine-readable `key=value` line on stdout.
fn run_child(scenario: Scenario, endpoints: usize, aggregated: bool) {
    let mut cfg = ScaleConfig::for_endpoints(endpoints, scenario);
    if aggregated {
        cfg = cfg.aggregated();
    }
    let harness = ScaleHarness::new(cfg);
    let stats = harness.run();
    assert_eq!(stats.sent, stats.arrived, "lost messages on a clean fabric");
    println!(
        "SCALE_POINT scenario={} endpoints={} nodes={} sent={} arrived={} wall_s={:.6} \
         virtual_s={:.9} des_events={} msg_rate={:.1} advance_p50_ns={} advance_p99_ns={} \
         rss_peak_bytes={} aggr_frames={} aggr_batched={}",
        stats.scenario,
        stats.endpoints,
        stats.nodes,
        stats.sent,
        stats.arrived,
        stats.wall_s,
        stats.virtual_s,
        stats.des_events,
        stats.msg_rate,
        stats.advance_p50_ns,
        stats.advance_p99_ns,
        peak_rss_bytes(),
        stats.aggr_frames,
        stats.aggr_batched,
    );
}

/// Spawn this binary in `--child` mode for one point and parse the result.
fn measure_point(scenario: Scenario, endpoints: usize, aggregated: bool) -> Result<Point, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut args = vec!["--child".to_string(), scenario.name().to_string(), endpoints.to_string()];
    if aggregated {
        args.push("--aggr".to_string());
    }
    let out = std::process::Command::new(exe)
        .args(&args)
        .output()
        .map_err(|e| format!("spawn: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "child {} {endpoints} exited with {}: {}",
            scenario.name(),
            out.status,
            String::from_utf8_lossy(&out.stderr),
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("SCALE_POINT "))
        .ok_or_else(|| format!("no SCALE_POINT line in {stdout:?}"))?;
    let get = |key: &str| -> Result<String, String> {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")).map(str::to_string))
            .ok_or_else(|| format!("missing {key} in {line:?}"))
    };
    Ok(Point {
        scenario: get("scenario")?,
        endpoints: get("endpoints")?.parse().map_err(|e| format!("endpoints: {e}"))?,
        nodes: get("nodes")?.parse().map_err(|e| format!("nodes: {e}"))?,
        sent: get("sent")?.parse().map_err(|e| format!("sent: {e}"))?,
        arrived: get("arrived")?.parse().map_err(|e| format!("arrived: {e}"))?,
        wall_s: get("wall_s")?.parse().map_err(|e| format!("wall_s: {e}"))?,
        virtual_s: get("virtual_s")?.parse().map_err(|e| format!("virtual_s: {e}"))?,
        des_events: get("des_events")?.parse().map_err(|e| format!("des_events: {e}"))?,
        msg_rate: get("msg_rate")?.parse().map_err(|e| format!("msg_rate: {e}"))?,
        advance_p50_ns: get("advance_p50_ns")?.parse().map_err(|e| format!("p50: {e}"))?,
        advance_p99_ns: get("advance_p99_ns")?.parse().map_err(|e| format!("p99: {e}"))?,
        rss_peak_bytes: get("rss_peak_bytes")?.parse().map_err(|e| format!("rss: {e}"))?,
        aggr_frames: get("aggr_frames")?.parse().map_err(|e| format!("aggr_frames: {e}"))?,
        aggr_batched: get("aggr_batched")?.parse().map_err(|e| format!("aggr_batched: {e}"))?,
    })
}

/// Whether the `"scale_gate"` ratchet entry is literally `"enforce"`.
fn scale_gate_enforced() -> bool {
    std::fs::read_to_string(RATCHET_PATH)
        .map(|s| s.contains("\"scale_gate\": \"enforce\""))
        .unwrap_or(false)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child mode: one point, one line, exit.
    if args.first().map(String::as_str) == Some("--child") {
        let scenario = match args.get(1).map(String::as_str) {
            Some("incast") => Scenario::Incast,
            Some("alltoall") => Scenario::AllToAll,
            other => panic!("unknown child scenario {other:?}"),
        };
        let endpoints: usize =
            args.get(2).and_then(|a| a.parse().ok()).expect("child endpoint count");
        let aggregated = args.get(3).map(String::as_str) == Some("--aggr");
        run_child(scenario, endpoints, aggregated);
        return;
    }

    // Point list: defaults, `--full` appends 1M, `--points 1000,10000`
    // overrides outright (the CI smoke job runs the two smallest).
    let mut points: Vec<usize> = POINTS.to_vec();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => points.push(1_000_000),
            "--points" => {
                let list = iter.next().expect("--points takes a comma list");
                points = list
                    .split(',')
                    .map(|p| p.trim().parse().expect("endpoint count"))
                    .collect();
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    points.sort_unstable();
    points.dedup();

    let mut curve: Vec<Point> = Vec::new();
    for &n in &points {
        let mut arms = vec![(Scenario::Incast, false), (Scenario::AllToAll, false)];
        // The coalescing arm only at scale: small points barely fill
        // per-destination buckets and would report noise, not a curve.
        if n >= AGGR_MIN_ENDPOINTS {
            arms.push((Scenario::AllToAll, true));
        }
        for (scenario, aggregated) in arms {
            match measure_point(scenario, n, aggregated) {
                Ok(p) => {
                    println!(
                        "{} @ {:>7} endpoints ({} nodes): {:>12.0} msg/s, \
                         p99 advance {:>7} ns, {:>6.1} B/endpoint peak{}",
                        p.scenario,
                        p.endpoints,
                        p.nodes,
                        p.msg_rate,
                        p.advance_p99_ns,
                        p.rss_per_endpoint(),
                        if aggregated {
                            format!(
                                ", {} frames @ {:.1} records/frame",
                                p.aggr_frames,
                                p.aggr_mean_batch()
                            )
                        } else {
                            String::new()
                        },
                    );
                    curve.push(p);
                }
                Err(e) => {
                    eprintln!("scale point {} {n} FAILED: {e}", scenario.name());
                    std::process::exit(1);
                }
            }
        }
    }

    // Failure-storm arm: small and in-process (its claim is correctness
    // under faults, not memory), deterministic per seed.
    let storm = failure_storm(STORM_ENDPOINTS, STORM_SEED);
    println!(
        "failure-storm @ {} endpoints: sent {} arrived {} failed {} \
         (links killed {}, retransmits {})",
        STORM_ENDPOINTS, storm.sent, storm.arrived, storm.failed, storm.links_killed,
        storm.retransmits,
    );
    assert!(
        storm.zero_lost,
        "failure storm lost messages silently: {storm:?}"
    );
    assert!(storm.links_killed > 0, "storm kill schedule never fired");

    // Gate evaluation over the incast curve (the harsher scenario).
    let incast: Vec<&Point> = curve.iter().filter(|p| p.scenario == "incast").collect();
    let (mut gate_ok, mut gate_detail) = (true, Vec::new());
    if incast.len() >= 2 {
        let first = incast.first().unwrap();
        let last = incast.last().unwrap();
        let prev = incast[incast.len() - 2];
        let retention = last.msg_rate / first.msg_rate.max(1e-9);
        if retention < RATE_RETENTION {
            gate_ok = false;
            gate_detail.push(format!(
                "rate retention {retention:.3} < {RATE_RETENTION} \
                 ({:.0} msg/s at {} vs {:.0} at {})",
                last.msg_rate, last.endpoints, first.msg_rate, first.endpoints,
            ));
        }
        let growth = last.rss_per_endpoint() / prev.rss_per_endpoint().max(1e-9);
        if last.rss_peak_bytes > 0 && growth > MEM_GROWTH_BUDGET {
            gate_ok = false;
            gate_detail.push(format!(
                "per-endpoint memory grew {growth:.2}x from {} to {} endpoints \
                 ({:.1} -> {:.1} B)",
                prev.endpoints,
                last.endpoints,
                prev.rss_per_endpoint(),
                last.rss_per_endpoint(),
            ));
        }
    }
    let enforced = scale_gate_enforced();
    let gate_mode = if enforced { "enforce" } else { "report" };

    let body: Vec<String> = curve.iter().map(Point::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"points\": {points:?},\n  \
         \"rate_retention_min\": {RATE_RETENTION},\n  \
         \"mem_growth_budget\": {MEM_GROWTH_BUDGET},\n  \
         \"scale_gate_mode\": \"{gate_mode}\",\n  \"scale_gate_ok\": {gate_ok},\n  \
         \"storm_endpoints\": {STORM_ENDPOINTS},\n  \"storm_seed\": {STORM_SEED},\n  \
         \"storm_sent\": {},\n  \"storm_arrived\": {},\n  \"storm_failed\": {},\n  \
         \"storm_links_killed\": {},\n  \"storm_retransmits\": {},\n  \
         \"storm_zero_lost\": {},\n  \"curve\": [\n{}\n  ]\n}}\n",
        storm.sent,
        storm.arrived,
        storm.failed,
        storm.links_killed,
        storm.retransmits,
        storm.zero_lost,
        body.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_scale.json", json).expect("write BENCH_scale.json");

    match (enforced, gate_ok) {
        (_, true) => println!("scale gate ({gate_mode}): ok"),
        (false, false) => {
            for d in &gate_detail {
                eprintln!("scale gate (report): {d}");
            }
        }
        (true, false) => {
            for d in &gate_detail {
                eprintln!("scale gate FAILED: {d}");
            }
            std::process::exit(1);
        }
    }
}
