//! Chaos regression harness for the reliability layer.
//!
//! Emits `BENCH_chaos.json` in the repo root and enforces the fair-weather
//! budget: with a clean fault plan installed (0% drop/corrupt — every
//! packet still pays CRC-32C stamping, link sequence numbers and
//! ack-window bookkeeping), the single-context eager message rate must stay
//! within **5%** of the bare fast path. The process exits non-zero when the
//! gate fails, so CI can run it directly.
//!
//! The JSON also records the genuinely hostile arm (1% drop + 1% corrupt,
//! fixed seed) as an A/B pair: the same plan under selective repeat (the
//! default, **gated** — slowdown vs the lossless baseline must stay under
//! 15%) and under go-back-N (report-only control, the protocol selective
//! repeat replaced), each with its RAS history — retransmits, SACK
//! retransmits, CRC errors, injector drops. A kill-a-node failover drill
//! rides along and is gated too: mid-flood the destination node loses
//! every link, traffic must drain to the registered standby with zero
//! lost messages, and the persistent channel must renegotiate and replay.
//!
//! ## Soak / replay
//!
//! `chaos --soak [runs] [msgs]` is the nightly mode: it draws fresh fault
//! seeds from the wall clock, runs each hostile plan under a wall-clock
//! bound — a point-to-point flood plus a kill-a-node failover drill per
//! seed — and **never fails the job**: a seed that hangs, panics, loses a
//! message across the failover, or exhausts its retry budget is instead
//! appended to `ci/chaos_regression_seeds.jsonl` (one JSON object per
//! line, tagged with its scenario) so it is archived as a deterministic
//! regression fixture. `chaos --replay` re-runs every archived seed under
//! its recorded scenario and exits non-zero if any still fails, which is
//! how a fix proves itself against the whole graveyard.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use pami::{FaultPlan, LinkProtocol, RetryConfig};
use pami_bench::{
    measure_aggr_chaos, measure_chaos_rate, measure_failover_drain, ChaosStats, FailoverStats,
};

/// Fair-weather budget: CRC + sequence numbers + acks at 0% faults may
/// cost at most this fraction of the bare message rate.
const GATE_PCT: f64 = 5.0;

/// Hostile budget: the 1%+1% plan under selective repeat may slow the
/// eager flood by at most this fraction of the lossless rate. Go-back-N
/// ran the same plan around 27% — the A/B arm below keeps that number on
/// record next to this gate.
const HOSTILE_GATE_PCT: f64 = 15.0;

/// Archived failing soak seeds (JSON lines, committed as fixtures).
const SEED_FILE: &str = "ci/chaos_regression_seeds.jsonl";

/// The soak's hostile plan for one seed: the same 1% drop + 1% corrupt mix
/// as the committed hostile arm, so an archived seed replays the exact run.
fn soak_plan(seed: u64) -> FaultPlan {
    FaultPlan::new()
        .seed(seed)
        .drop_rate(0.01)
        .corrupt_rate(0.01)
        .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 64 })
}

/// Run one hostile seed on its own thread with a wall-clock bound, so a
/// delivery bug that wedges the flood loop (the failure mode worth
/// archiving) cannot wedge the soak.
fn bounded_run(seed: u64, msgs: usize, timeout: Duration) -> Result<ChaosStats, &'static str> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(measure_chaos_rate(Some(soak_plan(seed)), msgs, false));
    });
    match rx.recv_timeout(timeout) {
        Ok(stats) => Ok(stats),
        Err(RecvTimeoutError::Timeout) => Err("timeout: delivery never completed"),
        Err(RecvTimeoutError::Disconnected) => Err("panic: run aborted"),
    }
}

/// One kill-a-node failover drill under a seeded *lossy* plan, bounded the
/// same way: the failover has to fire while retransmission is already
/// absorbing drops and corruption. Fails on any lost message or a channel
/// that never replayed, same contract as the gated clean-plan drill.
fn bounded_failover(seed: u64, msgs: usize, timeout: Duration) -> Result<(), &'static str> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(measure_failover_drain(msgs, Some(soak_plan(seed))));
    });
    match rx.recv_timeout(timeout) {
        Ok(f) if f.lost == 0 && f.drained > 0 && f.channel_replayed => Ok(()),
        Ok(f) if f.lost > 0 => Err("failover: messages lost"),
        Ok(_) => Err("failover: channel never replayed"),
        Err(RecvTimeoutError::Timeout) => Err("timeout: drain never completed"),
        Err(RecvTimeoutError::Disconnected) => Err("panic: run aborted"),
    }
}

/// Message count of one soak failover drill — small, because the drill
/// sends one message at a time and what it probes (the kill, the drain to
/// the standby, the channel replay) happens once per run regardless.
const FAILOVER_SOAK_MSGS: usize = 64;

/// `(seed, scenario)` pairs already archived in [`SEED_FILE`], in file
/// order. Lines without a `"scenario"` tag predate the failover arm and
/// replay as floods.
fn archived_seeds() -> Vec<(u64, String)> {
    let Ok(text) = std::fs::read_to_string(SEED_FILE) else { return Vec::new() };
    text.lines()
        .filter_map(|line| {
            let pos = line.find("\"seed\": ")? + "\"seed\": ".len();
            let seed = line[pos..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .ok()?;
            let scenario = if line.contains("\"scenario\": \"failover\"") {
                "failover"
            } else {
                "flood"
            };
            Some((seed, scenario.to_owned()))
        })
        .collect()
}

/// Append one failing seed to [`SEED_FILE`] (unless already archived).
fn archive_seed(known: &[(u64, String)], seed: u64, scenario: &str, msgs: usize, outcome: &str) {
    if known.iter().any(|(s, sc)| *s == seed && sc == scenario) {
        return;
    }
    let line = format!(
        "{{\"seed\": {seed}, \"scenario\": \"{scenario}\", \"msgs\": {msgs}, \
         \"drop_rate\": 0.01, \"corrupt_rate\": 0.01, \"outcome\": \"{outcome}\"}}\n"
    );
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(SEED_FILE)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => eprintln!("soak: archived {scenario} seed {seed} in {SEED_FILE}"),
        Err(e) => eprintln!("soak: could not archive seed {seed}: {e}"),
    }
}

/// Nightly randomized-seed soak: report-only, archives failures.
fn soak(runs: usize, msgs: usize) {
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(1, |d| d.as_nanos() as u64);
    let known = archived_seeds();
    let mut failures = 0usize;
    for i in 0..runs {
        // splitmix64-style draw: independent seeds from one wall-clock read.
        let mut z = wall.wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let seed = z ^ (z >> 31);
        match bounded_run(seed, msgs, Duration::from_secs(120)) {
            Ok(stats) => println!(
                "soak {i}/{runs} seed {seed}: ok ({:.0} msg/s, {} retransmits, {} crc errors)",
                stats.rate, stats.retransmits, stats.crc_errors
            ),
            Err(outcome) => {
                failures += 1;
                eprintln!("soak {i}/{runs} seed {seed}: FAILED ({outcome})");
                archive_seed(&known, seed, "flood", msgs, outcome);
            }
        }
        // The failover scenario soaks alongside the flood: same seed (the
        // drill is a different machine shape, so the dice sequences do
        // not overlap), lossy plan, kill-and-drain contract.
        match bounded_failover(seed, FAILOVER_SOAK_MSGS, Duration::from_secs(120)) {
            Ok(()) => println!("soak {i}/{runs} seed {seed}: failover ok"),
            Err(outcome) => {
                failures += 1;
                eprintln!("soak {i}/{runs} seed {seed}: failover FAILED ({outcome})");
                archive_seed(&known, seed, "failover", FAILOVER_SOAK_MSGS, outcome);
            }
        }
    }
    // Report-only by design: the nightly job stays green; the archive (and
    // the next `--replay`) is the signal.
    println!("soak done: {runs} runs, {failures} failures (report-only)");
}

/// Re-run every archived seed; exit non-zero while any still fails.
fn replay(msgs: usize) {
    let seeds = archived_seeds();
    if seeds.is_empty() {
        println!("replay: no archived seeds in {SEED_FILE}");
        return;
    }
    let mut failing = 0usize;
    for (seed, scenario) in &seeds {
        let outcome = match scenario.as_str() {
            "failover" => {
                bounded_failover(*seed, FAILOVER_SOAK_MSGS, Duration::from_secs(120)).map(|()| {
                    format!("replay seed {seed} (failover): ok")
                })
            }
            _ => bounded_run(*seed, msgs, Duration::from_secs(120)).map(|stats| {
                format!(
                    "replay seed {seed}: ok ({:.0} msg/s, {} retransmits)",
                    stats.rate, stats.retransmits
                )
            }),
        };
        match outcome {
            Ok(line) => println!("{line}"),
            Err(why) => {
                failing += 1;
                eprintln!("replay seed {seed} ({scenario}): still FAILING ({why})");
            }
        }
    }
    if failing > 0 {
        eprintln!("replay: {failing}/{} archived seeds still fail", seeds.len());
        std::process::exit(1);
    }
    println!("replay: all {} archived seeds pass", seeds.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--soak") => {
            let runs = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20);
            let msgs = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(20_000);
            soak(runs, msgs);
            return;
        }
        Some("--replay") => {
            let msgs = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);
            replay(msgs);
            return;
        }
        _ => {}
    }
    let msgs = args.first().and_then(|a| a.parse().ok()).unwrap_or(60_000usize);
    const ROUNDS: usize = 5;

    // Warm-up so allocator effects do not skew the first round.
    let _ = measure_chaos_rate(None, msgs / 10, true);
    let _ = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs / 10, true);

    // Interleave the arms round-robin and let each arm keep its best
    // round: transient host noise (this is a functional simulation on a
    // shared host, not isolated silicon) must hit *both* best-of series
    // to move the ratio.
    //
    // The gated arms pin the flood to the eager protocol: the 5% budget
    // was calibrated against the eager machinery, and an 8-byte send now
    // rides the short tier whose lossless baseline is lean enough that the
    // same percentage would gate CRC arithmetic itself. The short tier's
    // clean-plan cost is measured below as a separate, report-only pair.
    let mut baseline: Option<ChaosStats> = None;
    let mut clean: Option<ChaosStats> = None;
    let mut short_base: Option<ChaosStats> = None;
    let mut short_clean: Option<ChaosStats> = None;
    for _ in 0..ROUNDS {
        let base_run = measure_chaos_rate(None, msgs, true);
        if baseline.as_ref().is_none_or(|b| b.rate < base_run.rate) {
            baseline = Some(base_run);
        }
        let clean_run = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs, true);
        if clean.as_ref().is_none_or(|c| c.rate < clean_run.rate) {
            clean = Some(clean_run);
        }
        let sb_run = measure_chaos_rate(None, msgs, false);
        if short_base.as_ref().is_none_or(|b| b.rate < sb_run.rate) {
            short_base = Some(sb_run);
        }
        let sc_run = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs, false);
        if short_clean.as_ref().is_none_or(|c| c.rate < sc_run.rate) {
            short_clean = Some(sc_run);
        }
    }
    let (baseline, clean) = (baseline.unwrap(), clean.unwrap());
    let (short_base, short_clean) = (short_base.unwrap(), short_clean.unwrap());
    let overhead_pct = (baseline.rate - clean.rate) / baseline.rate * 100.0;
    let short_overhead_pct =
        (short_base.rate - short_clean.rate) / short_base.rate * 100.0;

    // Hostile A/B: 1% drop + 1% corrupt, deterministic seed, run under
    // both link protocols. Selective repeat (the default) is gated — the
    // slowdown against the lossless baseline must stay under
    // [`HOSTILE_GATE_PCT`]. Go-back-N is the report-only control arm:
    // same plan, same seed, the protocol this layer replaced. Correctness
    // is gated by `measure_chaos_rate` itself (it loops until every
    // message arrives). Best-of rounds for the same reason as above:
    // host noise must hit both series to move the ratio.
    let hostile_plan = || {
        FaultPlan::new()
            .seed(4242)
            .drop_rate(0.01)
            .corrupt_rate(0.01)
            .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 64 })
    };
    const HOSTILE_ROUNDS: usize = 4;
    let mut hostile: Option<ChaosStats> = None;
    let mut hostile_gbn: Option<ChaosStats> = None;
    // The hostile ratio gets its own lossless reference, interleaved into
    // the same loop: a noise burst that lands on this loop's time window
    // then hits reference and hostile arms alike instead of comparing a
    // hostile run against a baseline measured minutes of CPU-weather
    // earlier.
    let mut hostile_ref: f64 = 0.0;
    for _ in 0..HOSTILE_ROUNDS {
        let ref_run = measure_chaos_rate(None, msgs, true);
        hostile_ref = hostile_ref.max(ref_run.rate);
        let sr_run = measure_chaos_rate(Some(hostile_plan()), msgs, true);
        if hostile.as_ref().is_none_or(|h| h.rate < sr_run.rate) {
            hostile = Some(sr_run);
        }
        let gbn_run = measure_chaos_rate(
            Some(hostile_plan().link_protocol(LinkProtocol::GoBackN)),
            msgs,
            true,
        );
        if hostile_gbn.as_ref().is_none_or(|h| h.rate < gbn_run.rate) {
            hostile_gbn = Some(gbn_run);
        }
    }
    let (hostile, hostile_gbn) = (hostile.unwrap(), hostile_gbn.unwrap());

    // Aggregated-frames arm (report-only): the same 1%+1% plan over the
    // TRAM coalescing tier. `measure_aggr_chaos` hard-asserts exactly-once
    // after an over-pumped drain; the JSON records the batching and RAS
    // evidence so a run where the plan never bit (or frames never
    // coalesced) is visible rather than vacuous.
    let (aggr_stats, aggr_ras) = measure_aggr_chaos(hostile_plan(), msgs);

    // Kill-a-node failover drill, wall-clock bounded so a failover bug
    // that wedges the drain (the exact failure mode worth gating) reports
    // instead of hanging CI.
    let failover: Option<FailoverStats> = {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(measure_failover_drain(256, None));
        });
        rx.recv_timeout(Duration::from_secs(120)).ok()
    };

    let gate_ok = overhead_pct < GATE_PCT;
    let hostile_slowdown = (hostile_ref - hostile.rate) / hostile_ref * 100.0;
    let gbn_slowdown = (hostile_ref - hostile_gbn.rate) / hostile_ref * 100.0;
    let hostile_gate_ok = hostile_slowdown < HOSTILE_GATE_PCT;
    let failover_ok = failover.as_ref().is_some_and(|f| {
        f.lost == 0 && f.drained > 0 && f.unreachable_faults >= 1 && f.channel_replayed
    });
    let (fo_pre, fo_drained, fo_faults, fo_lost, fo_replayed) = failover
        .as_ref()
        .map_or((0, 0, 0, u64::MAX, false), |f| {
            (f.pre_kill, f.drained, f.unreachable_faults, f.lost, f.channel_replayed)
        });
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"msgs\": {msgs},\n  \"baseline_rate\": {base:.1},\n  \"crcseq_rate\": {clean_rate:.1},\n  \"crcseq_overhead_pct\": {overhead_pct:.3},\n  \"gate_pct\": {GATE_PCT},\n  \"gate_ok\": {gate_ok},\n  \"short_baseline_rate\": {short_base:.1},\n  \"short_crcseq_rate\": {short_clean_rate:.1},\n  \"short_crcseq_overhead_pct\": {short_overhead_pct:.3},\n  \"hostile_drop_rate\": 0.01,\n  \"hostile_corrupt_rate\": 0.01,\n  \"hostile_seed\": 4242,\n  \"hostile_ref_rate\": {hostile_ref:.1},\n  \"hostile_rate\": {hostile_rate:.1},\n  \"hostile_slowdown_pct\": {hostile_slowdown:.3},\n  \"hostile_gate_pct\": {HOSTILE_GATE_PCT},\n  \"hostile_gate_ok\": {hostile_gate_ok},\n  \"hostile_retransmits\": {retransmits},\n  \"hostile_sack_retransmits\": {sacks},\n  \"hostile_crc_errors\": {crc_errors},\n  \"hostile_packets_dropped\": {dropped},\n  \"gbn_hostile_rate\": {gbn_rate:.1},\n  \"gbn_hostile_slowdown_pct\": {gbn_slowdown:.3},\n  \"gbn_hostile_retransmits\": {gbn_retransmits},\n  \"aggr_hostile_rate\": {aggr_rate:.1},\n  \"aggr_hostile_frames\": {aggr_frames},\n  \"aggr_hostile_mean_batch\": {aggr_mean_batch:.2},\n  \"aggr_hostile_retransmits\": {aggr_retransmits},\n  \"aggr_hostile_crc_errors\": {aggr_crc_errors},\n  \"failover_msgs\": 256,\n  \"failover_pre_kill\": {fo_pre},\n  \"failover_drained\": {fo_drained},\n  \"failover_unreachable_faults\": {fo_faults},\n  \"failover_lost\": {fo_lost},\n  \"failover_channel_replayed\": {fo_replayed},\n  \"failover_ok\": {failover_ok},\n  \"telemetry_enabled\": {telemetry}\n}}\n",
        base = baseline.rate,
        clean_rate = clean.rate,
        short_base = short_base.rate,
        short_clean_rate = short_clean.rate,
        hostile_rate = hostile.rate,
        retransmits = hostile.retransmits,
        sacks = hostile.sack_retransmits,
        crc_errors = hostile.crc_errors,
        dropped = hostile.packets_dropped,
        gbn_rate = hostile_gbn.rate,
        gbn_retransmits = hostile_gbn.retransmits,
        aggr_rate = aggr_stats.rate,
        aggr_frames = aggr_stats.frames,
        aggr_mean_batch = aggr_stats.mean_batch(),
        aggr_retransmits = aggr_ras.retransmits,
        aggr_crc_errors = aggr_ras.crc_errors,
        fo_lost = if fo_lost == u64::MAX { "null".to_string() } else { fo_lost.to_string() },
        telemetry = bgq_upc::ENABLED,
    );
    print!("{json}");
    std::fs::write("BENCH_chaos.json", json).expect("write BENCH_chaos.json");

    let mut failed = false;
    if !gate_ok {
        failed = true;
        eprintln!(
            "chaos gate FAILED: CRC+seq at 0% faults costs {overhead_pct:.2}% \
             (budget {GATE_PCT}%)"
        );
    } else {
        println!("chaos gate OK: CRC+seq at 0% faults costs {overhead_pct:.2}% (< {GATE_PCT}%)");
    }
    if !hostile_gate_ok {
        failed = true;
        eprintln!(
            "hostile gate FAILED: 1%+1% chaos slows the flood {hostile_slowdown:.2}% \
             (budget {HOSTILE_GATE_PCT}%; go-back-N control ran {gbn_slowdown:.2}%)"
        );
    } else {
        println!(
            "hostile gate OK: 1%+1% chaos costs {hostile_slowdown:.2}% under selective \
             repeat (< {HOSTILE_GATE_PCT}%; go-back-N control: {gbn_slowdown:.2}%)"
        );
    }
    if !failover_ok {
        failed = true;
        match &failover {
            Some(f) => eprintln!(
                "failover gate FAILED: lost={}, drained={}, faults={}, replayed={}",
                f.lost, f.drained, f.unreachable_faults, f.channel_replayed
            ),
            None => eprintln!("failover gate FAILED: drill wedged past its 120s wall clock"),
        }
    } else {
        println!(
            "failover gate OK: node kill drained {fo_drained} msgs to the standby \
             (0 lost, {fo_faults} unreachable faults absorbed, channel replayed)"
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "short tier (report): clean plan costs {short_overhead_pct:.2}% \
         ({sb:.0} -> {sc:.0} msg/s)",
        sb = short_base.rate,
        sc = short_clean.rate,
    );
    println!(
        "aggregated frames (report): 1%+1% chaos delivered exactly-once at \
         {ar:.0} msg/s, mean batch {mb:.1}, {rt} retransmits / {ce} CRC errors absorbed",
        ar = aggr_stats.rate,
        mb = aggr_stats.mean_batch(),
        rt = aggr_ras.retransmits,
        ce = aggr_ras.crc_errors,
    );
}
