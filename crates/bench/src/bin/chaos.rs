//! Chaos regression harness for the reliability layer.
//!
//! Emits `BENCH_chaos.json` in the repo root and enforces the fair-weather
//! budget: with a clean fault plan installed (0% drop/corrupt — every
//! packet still pays CRC-32C stamping, link sequence numbers and
//! ack-window bookkeeping), the single-context eager message rate must stay
//! within **5%** of the bare fast path. The process exits non-zero when the
//! gate fails, so CI can run it directly.
//!
//! The JSON also records one genuinely hostile run (1% drop + 1% corrupt,
//! fixed seed) with its RAS history — retransmits, CRC errors, injector
//! drops — as a committed record of what the retransmit protocol costs
//! when the fabric actually misbehaves.
//!
//! ## Soak / replay
//!
//! `chaos --soak [runs] [msgs]` is the nightly mode: it draws fresh fault
//! seeds from the wall clock, runs each hostile plan under a wall-clock
//! bound, and **never fails the job** — a seed that hangs, panics, or
//! exhausts its retry budget is instead appended to
//! `ci/chaos_regression_seeds.jsonl` (one JSON object per line) so it is
//! archived as a deterministic regression fixture. `chaos --replay` re-runs
//! every archived seed and exits non-zero if any still fails, which is how
//! a fix proves itself against the whole graveyard.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use pami::{FaultPlan, RetryConfig};
use pami_bench::{measure_chaos_rate, ChaosStats};

/// Fair-weather budget: CRC + sequence numbers + acks at 0% faults may
/// cost at most this fraction of the bare message rate.
const GATE_PCT: f64 = 5.0;

/// Archived failing soak seeds (JSON lines, committed as fixtures).
const SEED_FILE: &str = "ci/chaos_regression_seeds.jsonl";

/// The soak's hostile plan for one seed: the same 1% drop + 1% corrupt mix
/// as the committed hostile arm, so an archived seed replays the exact run.
fn soak_plan(seed: u64) -> FaultPlan {
    FaultPlan::new()
        .seed(seed)
        .drop_rate(0.01)
        .corrupt_rate(0.01)
        .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 64 })
}

/// Run one hostile seed on its own thread with a wall-clock bound, so a
/// delivery bug that wedges the flood loop (the failure mode worth
/// archiving) cannot wedge the soak.
fn bounded_run(seed: u64, msgs: usize, timeout: Duration) -> Result<ChaosStats, &'static str> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(measure_chaos_rate(Some(soak_plan(seed)), msgs, false));
    });
    match rx.recv_timeout(timeout) {
        Ok(stats) => Ok(stats),
        Err(RecvTimeoutError::Timeout) => Err("timeout: delivery never completed"),
        Err(RecvTimeoutError::Disconnected) => Err("panic: run aborted"),
    }
}

/// Seeds already archived in [`SEED_FILE`], in file order.
fn archived_seeds() -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(SEED_FILE) else { return Vec::new() };
    text.lines()
        .filter_map(|line| {
            let pos = line.find("\"seed\": ")? + "\"seed\": ".len();
            line[pos..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().ok()
        })
        .collect()
}

/// Nightly randomized-seed soak: report-only, archives failures.
fn soak(runs: usize, msgs: usize) {
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(1, |d| d.as_nanos() as u64);
    let known = archived_seeds();
    let mut failures = 0usize;
    for i in 0..runs {
        // splitmix64-style draw: independent seeds from one wall-clock read.
        let mut z = wall.wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let seed = z ^ (z >> 31);
        match bounded_run(seed, msgs, Duration::from_secs(120)) {
            Ok(stats) => println!(
                "soak {i}/{runs} seed {seed}: ok ({:.0} msg/s, {} retransmits, {} crc errors)",
                stats.rate, stats.retransmits, stats.crc_errors
            ),
            Err(outcome) => {
                failures += 1;
                eprintln!("soak {i}/{runs} seed {seed}: FAILED ({outcome})");
                if known.contains(&seed) {
                    continue;
                }
                let line = format!(
                    "{{\"seed\": {seed}, \"msgs\": {msgs}, \"drop_rate\": 0.01, \"corrupt_rate\": 0.01, \"outcome\": \"{outcome}\"}}\n"
                );
                use std::io::Write as _;
                let appended = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(SEED_FILE)
                    .and_then(|mut f| f.write_all(line.as_bytes()));
                match appended {
                    Ok(()) => eprintln!("soak: archived seed {seed} in {SEED_FILE}"),
                    Err(e) => eprintln!("soak: could not archive seed {seed}: {e}"),
                }
            }
        }
    }
    // Report-only by design: the nightly job stays green; the archive (and
    // the next `--replay`) is the signal.
    println!("soak done: {runs} runs, {failures} failures (report-only)");
}

/// Re-run every archived seed; exit non-zero while any still fails.
fn replay(msgs: usize) {
    let seeds = archived_seeds();
    if seeds.is_empty() {
        println!("replay: no archived seeds in {SEED_FILE}");
        return;
    }
    let mut failing = 0usize;
    for seed in &seeds {
        match bounded_run(*seed, msgs, Duration::from_secs(120)) {
            Ok(stats) => println!(
                "replay seed {seed}: ok ({:.0} msg/s, {} retransmits)",
                stats.rate, stats.retransmits
            ),
            Err(outcome) => {
                failing += 1;
                eprintln!("replay seed {seed}: still FAILING ({outcome})");
            }
        }
    }
    if failing > 0 {
        eprintln!("replay: {failing}/{} archived seeds still fail", seeds.len());
        std::process::exit(1);
    }
    println!("replay: all {} archived seeds pass", seeds.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--soak") => {
            let runs = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20);
            let msgs = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(20_000);
            soak(runs, msgs);
            return;
        }
        Some("--replay") => {
            let msgs = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);
            replay(msgs);
            return;
        }
        _ => {}
    }
    let msgs = args.first().and_then(|a| a.parse().ok()).unwrap_or(60_000usize);
    const ROUNDS: usize = 5;

    // Warm-up so allocator effects do not skew the first round.
    let _ = measure_chaos_rate(None, msgs / 10, true);
    let _ = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs / 10, true);

    // Interleave the arms round-robin and let each arm keep its best
    // round: transient host noise (this is a functional simulation on a
    // shared host, not isolated silicon) must hit *both* best-of series
    // to move the ratio.
    //
    // The gated arms pin the flood to the eager protocol: the 5% budget
    // was calibrated against the eager machinery, and an 8-byte send now
    // rides the short tier whose lossless baseline is lean enough that the
    // same percentage would gate CRC arithmetic itself. The short tier's
    // clean-plan cost is measured below as a separate, report-only pair.
    let mut baseline: Option<ChaosStats> = None;
    let mut clean: Option<ChaosStats> = None;
    let mut short_base: Option<ChaosStats> = None;
    let mut short_clean: Option<ChaosStats> = None;
    for _ in 0..ROUNDS {
        let base_run = measure_chaos_rate(None, msgs, true);
        if baseline.as_ref().is_none_or(|b| b.rate < base_run.rate) {
            baseline = Some(base_run);
        }
        let clean_run = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs, true);
        if clean.as_ref().is_none_or(|c| c.rate < clean_run.rate) {
            clean = Some(clean_run);
        }
        let sb_run = measure_chaos_rate(None, msgs, false);
        if short_base.as_ref().is_none_or(|b| b.rate < sb_run.rate) {
            short_base = Some(sb_run);
        }
        let sc_run = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs, false);
        if short_clean.as_ref().is_none_or(|c| c.rate < sc_run.rate) {
            short_clean = Some(sc_run);
        }
    }
    let (baseline, clean) = (baseline.unwrap(), clean.unwrap());
    let (short_base, short_clean) = (short_base.unwrap(), short_clean.unwrap());
    let overhead_pct = (baseline.rate - clean.rate) / baseline.rate * 100.0;
    let short_overhead_pct =
        (short_base.rate - short_clean.rate) / short_base.rate * 100.0;

    // One hostile run: 1% drop + 1% corrupt, deterministic seed. Not gated
    // on rate (retransmission is allowed to cost); gated on correctness by
    // `measure_chaos_rate` itself (it loops until every message arrives).
    let hostile = measure_chaos_rate(
        Some(
            FaultPlan::new()
                .seed(4242)
                .drop_rate(0.01)
                .corrupt_rate(0.01)
                .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 64 }),
        ),
        msgs,
        true,
    );

    let gate_ok = overhead_pct < GATE_PCT;
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"msgs\": {msgs},\n  \"baseline_rate\": {base:.1},\n  \"crcseq_rate\": {clean_rate:.1},\n  \"crcseq_overhead_pct\": {overhead_pct:.3},\n  \"gate_pct\": {GATE_PCT},\n  \"gate_ok\": {gate_ok},\n  \"short_baseline_rate\": {short_base:.1},\n  \"short_crcseq_rate\": {short_clean_rate:.1},\n  \"short_crcseq_overhead_pct\": {short_overhead_pct:.3},\n  \"hostile_drop_rate\": 0.01,\n  \"hostile_corrupt_rate\": 0.01,\n  \"hostile_seed\": 4242,\n  \"hostile_rate\": {hostile_rate:.1},\n  \"hostile_slowdown_pct\": {hostile_slowdown:.3},\n  \"hostile_retransmits\": {retransmits},\n  \"hostile_crc_errors\": {crc_errors},\n  \"hostile_packets_dropped\": {dropped},\n  \"telemetry_enabled\": {telemetry}\n}}\n",
        base = baseline.rate,
        clean_rate = clean.rate,
        short_base = short_base.rate,
        short_clean_rate = short_clean.rate,
        hostile_rate = hostile.rate,
        hostile_slowdown = (baseline.rate - hostile.rate) / baseline.rate * 100.0,
        retransmits = hostile.retransmits,
        crc_errors = hostile.crc_errors,
        dropped = hostile.packets_dropped,
        telemetry = bgq_upc::ENABLED,
    );
    print!("{json}");
    std::fs::write("BENCH_chaos.json", json).expect("write BENCH_chaos.json");

    if !gate_ok {
        eprintln!(
            "chaos gate FAILED: CRC+seq at 0% faults costs {overhead_pct:.2}% \
             (budget {GATE_PCT}%)"
        );
        std::process::exit(1);
    }
    println!("chaos gate OK: CRC+seq at 0% faults costs {overhead_pct:.2}% (< {GATE_PCT}%)");
    println!(
        "short tier (report): clean plan costs {short_overhead_pct:.2}% \
         ({sb:.0} -> {sc:.0} msg/s)",
        sb = short_base.rate,
        sc = short_clean.rate,
    );
}
