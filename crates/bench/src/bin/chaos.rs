//! Chaos regression harness for the reliability layer.
//!
//! Emits `BENCH_chaos.json` in the repo root and enforces the fair-weather
//! budget: with a clean fault plan installed (0% drop/corrupt — every
//! packet still pays CRC-32C stamping, link sequence numbers and
//! ack-window bookkeeping), the single-context eager message rate must stay
//! within **5%** of the bare fast path. The process exits non-zero when the
//! gate fails, so CI can run it directly.
//!
//! The JSON also records one genuinely hostile run (1% drop + 1% corrupt,
//! fixed seed) with its RAS history — retransmits, CRC errors, injector
//! drops — as a committed record of what the retransmit protocol costs
//! when the fabric actually misbehaves.

use pami::{FaultPlan, RetryConfig};
use pami_bench::{measure_chaos_rate, ChaosStats};

/// Fair-weather budget: CRC + sequence numbers + acks at 0% faults may
/// cost at most this fraction of the bare message rate.
const GATE_PCT: f64 = 5.0;

fn main() {
    let msgs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000usize);
    const ROUNDS: usize = 5;

    // Warm-up so allocator effects do not skew the first round.
    let _ = measure_chaos_rate(None, msgs / 10);
    let _ = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs / 10);

    // Interleave the arms round-robin and let each arm keep its best
    // round: transient host noise (this is a functional simulation on a
    // shared host, not isolated silicon) must hit *both* best-of series
    // to move the ratio.
    let mut baseline: Option<ChaosStats> = None;
    let mut clean: Option<ChaosStats> = None;
    for _ in 0..ROUNDS {
        let base_run = measure_chaos_rate(None, msgs);
        if baseline.as_ref().is_none_or(|b| b.rate < base_run.rate) {
            baseline = Some(base_run);
        }
        let clean_run = measure_chaos_rate(Some(FaultPlan::new().seed(7)), msgs);
        if clean.as_ref().is_none_or(|c| c.rate < clean_run.rate) {
            clean = Some(clean_run);
        }
    }
    let (baseline, clean) = (baseline.unwrap(), clean.unwrap());
    let overhead_pct = (baseline.rate - clean.rate) / baseline.rate * 100.0;

    // One hostile run: 1% drop + 1% corrupt, deterministic seed. Not gated
    // on rate (retransmission is allowed to cost); gated on correctness by
    // `measure_chaos_rate` itself (it loops until every message arrives).
    let hostile = measure_chaos_rate(
        Some(
            FaultPlan::new()
                .seed(4242)
                .drop_rate(0.01)
                .corrupt_rate(0.01)
                .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 64 }),
        ),
        msgs,
    );

    let gate_ok = overhead_pct < GATE_PCT;
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"msgs\": {msgs},\n  \"baseline_rate\": {base:.1},\n  \"crcseq_rate\": {clean_rate:.1},\n  \"crcseq_overhead_pct\": {overhead_pct:.3},\n  \"gate_pct\": {GATE_PCT},\n  \"gate_ok\": {gate_ok},\n  \"hostile_drop_rate\": 0.01,\n  \"hostile_corrupt_rate\": 0.01,\n  \"hostile_seed\": 4242,\n  \"hostile_rate\": {hostile_rate:.1},\n  \"hostile_slowdown_pct\": {hostile_slowdown:.3},\n  \"hostile_retransmits\": {retransmits},\n  \"hostile_crc_errors\": {crc_errors},\n  \"hostile_packets_dropped\": {dropped},\n  \"telemetry_enabled\": {telemetry}\n}}\n",
        base = baseline.rate,
        clean_rate = clean.rate,
        hostile_rate = hostile.rate,
        hostile_slowdown = (baseline.rate - hostile.rate) / baseline.rate * 100.0,
        retransmits = hostile.retransmits,
        crc_errors = hostile.crc_errors,
        dropped = hostile.packets_dropped,
        telemetry = bgq_upc::ENABLED,
    );
    print!("{json}");
    std::fs::write("BENCH_chaos.json", json).expect("write BENCH_chaos.json");

    if !gate_ok {
        eprintln!(
            "chaos gate FAILED: CRC+seq at 0% faults costs {overhead_pct:.2}% \
             (budget {GATE_PCT}%)"
        );
        std::process::exit(1);
    }
    println!("chaos gate OK: CRC+seq at 0% faults costs {overhead_pct:.2}% (< {GATE_PCT}%)");
}
