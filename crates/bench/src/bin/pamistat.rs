//! `pamistat` — the stack's telemetry report tool.
//!
//! ```text
//! pamistat sample [PREFIX]        run a whole-stack sample workload and write
//!                                 PREFIX.json + PREFIX_trace.json +
//!                                 PREFIX_ras.jsonl (the drained RAS event
//!                                 ring; default PREFIX: telemetry)
//! pamistat show FILE.json         pretty-print one report (layer totals,
//!                                 counters, histogram summaries)
//! pamistat diff OLD.json NEW.json print per-counter and per-histogram deltas
//!                                 between two reports
//! ```
//!
//! `sample` needs the `telemetry` feature (the default); with the probes
//! compiled out it still writes structurally valid but empty reports and
//! says so. `show`/`diff` work on any previously captured report — the
//! parser lives in `pami_bench::report` and handles exactly the format
//! `bgq_upc::Snapshot::report_json` emits.

use pami_bench::report::{self, Report};
use pami_bench::pamistat_sample;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sample") => sample(args.get(1).map(String::as_str).unwrap_or("telemetry")),
        Some("show") => {
            let Some(path) = args.get(1) else { return usage() };
            show(&load(path));
        }
        Some("diff") => {
            let (Some(old), Some(new)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            diff(&load(old), &load(new));
        }
        _ => usage(),
    }
}

fn usage() {
    eprintln!("usage: pamistat sample [PREFIX] | show FILE.json | diff OLD.json NEW.json");
    std::process::exit(2);
}

fn load(path: &str) -> Report {
    match std::fs::read_to_string(path) {
        Ok(text) => report::parse(&text),
        Err(e) => {
            eprintln!("pamistat: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn sample(prefix: &str) {
    let (report_json, trace_json, ras_jsonl) = pamistat_sample();
    let report_path = format!("{prefix}.json");
    let trace_path = format!("{prefix}_trace.json");
    let ras_path = format!("{prefix}_ras.jsonl");
    std::fs::write(&report_path, &report_json).expect("write report");
    std::fs::write(&trace_path, &trace_json).expect("write trace");
    std::fs::write(&ras_path, &ras_jsonl).expect("write ras events");
    if bgq_upc::ENABLED {
        println!("pamistat: wrote {report_path} + {trace_path} + {ras_path}");
        show(&report::parse(&report_json));
    } else {
        println!(
            "pamistat: telemetry feature compiled out; wrote empty {report_path} + \
             {trace_path} (RAS ring in {ras_path} stays populated)"
        );
    }
    // The RAS event ring is the narrative behind the ras.* counters —
    // print the tail so a chaos run is triaged without opening files.
    let events: Vec<&str> = ras_jsonl.lines().collect();
    println!();
    println!("-- ras event ring (last {} of {}) --", events.len().min(10), events.len());
    for line in events.iter().rev().take(10).rev() {
        println!("{line}");
    }
}

fn layer_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

fn show(r: &Report) {
    println!();
    println!("-- layers --");
    let mut layers: Vec<&str> = r.counters.iter().map(|(n, _)| layer_of(n)).collect();
    layers.sort_unstable();
    layers.dedup();
    for layer in layers {
        let total: u64 = r
            .counters
            .iter()
            .filter(|(n, _)| layer_of(n) == layer)
            .map(|(_, v)| *v)
            .sum();
        println!("{layer:<14}{total:>14}");
    }
    println!();
    println!("-- counters --");
    for (name, v) in &r.counters {
        println!("{name:<34}{v:>14}");
    }
    println!();
    println!("-- histograms (ns unless named otherwise) --");
    println!(
        "{:<30}{:>10}{:>14}{:>10}{:>10}{:>12}",
        "name", "count", "sum", "p50", "p99", "max"
    );
    for (name, h) in &r.histograms {
        println!(
            "{:<30}{:>10}{:>14}{:>10}{:>10}{:>12}",
            name, h.count, h.sum, h.p50, h.p99, h.max
        );
    }
}

fn diff(old: &Report, new: &Report) {
    // Union of counter names, file order of `new` first, then `old`-only.
    let mut names: Vec<&str> = new.counters.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in &old.counters {
        if !names.contains(&n.as_str()) {
            names.push(n);
        }
    }
    println!();
    println!("-- counter deltas (new - old; unchanged rows skipped) --");
    println!("{:<34}{:>14}{:>14}{:>14}", "name", "old", "new", "delta");
    let mut changed = 0usize;
    for name in &names {
        let (o, n) = (old.counter(name), new.counter(name));
        if o == n {
            continue;
        }
        changed += 1;
        let delta = n as i64 - o as i64;
        println!("{name:<34}{o:>14}{n:>14}{delta:>+14}");
    }
    if changed == 0 {
        println!("(no counter changed)");
    }

    let mut hnames: Vec<&str> = new.histograms.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in &old.histograms {
        if !hnames.contains(&n.as_str()) {
            hnames.push(n);
        }
    }
    println!();
    println!("-- histogram deltas (count/sum are new-old; p50/p99/max are new vs old) --");
    println!(
        "{:<30}{:>12}{:>14}{:>18}{:>18}",
        "name", "Δcount", "Δsum", "p50 old→new", "p99 old→new"
    );
    let mut hchanged = 0usize;
    for name in &hnames {
        let o = old.histogram(name).unwrap_or_default();
        let n = new.histogram(name).unwrap_or_default();
        if o == n {
            continue;
        }
        hchanged += 1;
        println!(
            "{:<30}{:>+12}{:>+14}{:>18}{:>18}",
            name,
            n.count as i64 - o.count as i64,
            n.sum as i64 - o.sum as i64,
            format!("{}→{}", o.p50, n.p50),
            format!("{}→{}", o.p99, n.p99),
        );
    }
    if hchanged == 0 {
        println!("(no histogram changed)");
    }
}
