//! Hot-spot bench: N nodes hammering one fetch-add counter, with and
//! without the in-network combining overlay.
//!
//! Emits `BENCH_hotspot.json` in the repo root with, per node count:
//!
//! * packets applied at the root window's node (`comb.root_applies` for
//!   the overlay; one per request for the control) — the paper-level
//!   claim: N requesters collapse to O(rounds) root packets instead of
//!   N·K, so the root-packet curve is ~flat vs linear,
//! * the **root-bound rmw rate**: a hot spot serializes on the root's
//!   reception pipeline, so throughput is `ops / (root_packets ×
//!   ROOT_PKT_NS)` — the simulation counts the packets, the model charges
//!   each one the MU's per-packet service time. This is the gated metric:
//!   it is deterministic (packet counts don't depend on host scheduling),
//!   where host wall-clock on an oversubscribed CI box is a scheduler
//!   lottery (this sweep runs up to 64 task threads; CI may have 1 core).
//! * the host wall-clock rate of the requesters' inject→last-reply span,
//!   reported for reference only,
//!
//! plus a chaos arm proving exactly-once rmw under a seeded drop+corrupt
//! plan (combined packets that retransmit must not double-apply).
//!
//! Every run also *verifies* the work: the hot word must equal the total
//! operand sum and the returned priors must form a permutation of
//! `0..total` (linearizability), so a bench run doubles as a stress test.
//!
//! ## Gate
//!
//! The `"hotspot_gate"` entry of `ci/scaling_ratchet.json` gates the rate
//! ratio at the largest point (combined ≥ `hotspot_gate_min_ratio` ×
//! uncombined). Ships in `report` mode; a human flips it to `enforce`
//! once the ratio is proven stable on CI hosts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use pami::{
    Client, Counter, FaultPlan, Machine, MemKey, MemRegion, MemSlot, RmwArgs, RmwOp, WindowRef,
};

const RATCHET_PATH: &str = "ci/scaling_ratchet.json";

/// Node counts of the sweep (the acceptance point is the largest).
const POINTS: [usize; 5] = [4, 8, 16, 32, 64];

/// Fetch-adds issued per requester task (tasks 1..N; task 0 hosts the
/// window and only drives progress).
const ADDS_PER_TASK: usize = 256;

/// Modeled service time of one packet at the root's reception pipeline
/// (the BG/Q MU handles a packet in tens of ns; the constant scales both
/// arms identically, so the gated ratio is independent of its value).
const ROOT_PKT_NS: f64 = 64.0;

/// Chaos arm shape.
const CHAOS_NODES: usize = 16;
const CHAOS_ADDS: usize = 64;
const CHAOS_SEED: u64 = 0xB10C;

/// One measured (node count, combining) run.
struct Run {
    nodes: usize,
    combining: bool,
    ops: u64,
    wall_s: f64,
    host_rate: f64,
    /// Packets applied at the root: `comb.root_applies` when combining,
    /// one per request when not (every uncombined rmw is its own packet).
    /// 0 when telemetry is compiled out and combining is on.
    root_packets: u64,
    merged: u64,
    retransmits: u64,
    dupes_dropped: u64,
}

/// Drive one hot-key storm: tasks 1..n each issue `k` fetch-adds of 1
/// against a window on task 0, waiting for all priors. Returns the run
/// plus verification of the final value and prior permutation.
fn storm(nodes: usize, combining: bool, k: usize, plan: Option<FaultPlan>) -> Run {
    let mut builder = Machine::with_nodes(nodes).combining(combining);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let machine = builder.build();
    let word = MemRegion::zeroed(8);
    let key_cell: Arc<OnceLock<MemKey>> = Arc::new(OnceLock::new());
    let prior_sum = Arc::new(AtomicU64::new(0));
    let wall_ns = Arc::new(AtomicU64::new(0));

    let word2 = word.clone();
    let key_cell2 = Arc::clone(&key_cell);
    let prior_sum2 = Arc::clone(&prior_sum);
    let wall_ns2 = Arc::clone(&wall_ns);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "hotspot", 1);
        let ctx = client.context(0);
        if env.task == 0 {
            key_cell2.set(env.machine.create_window(word2.clone(), None)).unwrap();
        }
        env.machine.task_barrier();
        let key = *key_cell2.get().unwrap();
        if env.task != 0 {
            // Timed span: injection of the first add through arrival of the
            // last prior. The trailing barrier (64 oversubscribed threads
            // parking) is excluded — it costs the same with and without
            // combining and would only dilute the ratio under test.
            let start = Instant::now();
            let slots: Vec<MemRegion> = (0..k).map(|_| MemRegion::zeroed(8)).collect();
            let done = Counter::new();
            done.add_expected(k as u64);
            for slot in &slots {
                ctx.rmw(RmwArgs {
                    dest_task: 0,
                    window: WindowRef::base(key),
                    op: RmwOp::FetchAdd,
                    operand: 1,
                    compare: 0,
                    result: Some(MemSlot::base(slot.clone())),
                    done: Some(done.clone()),
                })
                .unwrap();
            }
            ctx.advance_until(|| done.is_complete());
            wall_ns2.fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let mut sum = 0u64;
            for slot in &slots {
                sum += slot.read_i64(0) as u64;
            }
            prior_sum2.fetch_add(sum, Ordering::Relaxed);
        }
        env.machine.task_barrier();
    });

    let ops = ((nodes - 1) * k) as u64;
    // Verification: final value and the arithmetic-series prior sum (the
    // priors across all requesters are a permutation of 0..ops).
    assert_eq!(word.read_i64(0) as u64, ops, "every fetch-add applied exactly once");
    assert_eq!(
        prior_sum.load(Ordering::Relaxed),
        ops * (ops - 1) / 2,
        "priors form the arithmetic series — combining decombined correctly"
    );
    let wall_s = wall_ns.load(Ordering::Relaxed) as f64 / 1e9;
    let (root_packets, merged, retransmits, dupes_dropped) =
        match machine.fabric().comb_counters() {
            Some(c) => (
                c.root_applies.value(),
                c.merged.value(),
                c.retransmits.value(),
                c.dupes_dropped.value(),
            ),
            None => (ops, 0, 0, 0),
        };
    Run {
        nodes,
        combining,
        ops,
        wall_s,
        host_rate: ops as f64 / wall_s.max(1e-9),
        root_packets,
        merged,
        retransmits,
        dupes_dropped,
    }
}

impl Run {
    /// Root-bound rmw rate: every op completes only after its (possibly
    /// combined) packet clears the root's reception pipeline, which
    /// serializes at one packet per [`ROOT_PKT_NS`].
    fn root_bound_rate(&self) -> f64 {
        self.ops as f64 / (self.root_packets.max(1) as f64 * ROOT_PKT_NS / 1e9)
    }
}

fn hotspot_gate_enforced() -> bool {
    std::fs::read_to_string(RATCHET_PATH)
        .map(|s| s.contains("\"hotspot_gate\": \"enforce\""))
        .unwrap_or(false)
}

fn hotspot_gate_min_ratio() -> f64 {
    let Ok(s) = std::fs::read_to_string(RATCHET_PATH) else { return 4.0 };
    let needle = "\"hotspot_gate_min_ratio\": ";
    let Some(at) = s.find(needle) else { return 4.0 };
    s[at + needle.len()..]
        .split([',', '}'])
        .next()
        .and_then(|t| t.trim().parse().ok())
        .unwrap_or(4.0)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let points: &[usize] = if quick { &POINTS[..3] } else { &POINTS };
    let adds = if quick { ADDS_PER_TASK / 4 } else { ADDS_PER_TASK };

    // Best-of-3 per configuration: thread scheduling noise at 64
    // oversubscribed task threads swamps a single sample.
    let reps = if quick { 2 } else { 3 };
    let best = |n: usize, combining: bool| -> Run {
        (0..reps)
            .map(|_| storm(n, combining, adds, None))
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .unwrap()
    };

    let mut rows: Vec<String> = Vec::new();
    let mut last_ratio = 0.0f64;
    for &n in points {
        let off = best(n, false);
        let on = best(n, true);
        let ratio = on.root_bound_rate() / off.root_bound_rate().max(1e-9);
        last_ratio = ratio;
        println!(
            "N={:>3}: uncombined {:>12.0} rmw/s ({} root pkts), combined {:>12.0} rmw/s \
             ({} root pkts, {} merged) — {ratio:.2}x",
            n,
            off.root_bound_rate(),
            off.root_packets,
            on.root_bound_rate(),
            on.root_packets,
            on.merged,
        );
        for r in [&off, &on] {
            rows.push(format!(
                "    {{\"nodes\": {}, \"combining\": {}, \"ops\": {}, \"rate\": {:.1}, \
                 \"root_packets\": {}, \"merged\": {}, \"wall_s\": {:.6}, \"host_rate\": {:.1}}}",
                r.nodes,
                r.combining,
                r.ops,
                r.root_bound_rate(),
                r.root_packets,
                r.merged,
                r.wall_s,
                r.host_rate,
            ));
        }
    }
    if !cfg!(feature = "telemetry") {
        // Packet accounting needs the comb.* counters; without them the
        // combined arm's root packets read zero and the ratio is
        // meaningless. Report and bow out (report-mode semantics).
        println!("hotspot: telemetry feature off — root packet accounting unavailable, gate skipped");
        last_ratio = f64::NAN;
    }

    // Chaos arm: seeded drops + ack-loss duplicates on the combined path.
    // `storm` asserts exactly-once and prior linearizability internally —
    // reaching this line with a biting plan IS the proof.
    let plan = FaultPlan::new().seed(CHAOS_SEED).drop_rate(0.05).corrupt_rate(0.05);
    let chaos = storm(CHAOS_NODES, true, CHAOS_ADDS, Some(plan));
    println!(
        "chaos N={} @ seed {:#x}: {} combined rmws exactly-once under 5% drop + 5% ack-loss \
         ({} retransmits, {} duplicates discarded)",
        CHAOS_NODES, CHAOS_SEED, chaos.ops, chaos.retransmits, chaos.dupes_dropped,
    );

    let enforced = hotspot_gate_enforced();
    let min_ratio = hotspot_gate_min_ratio();
    let gate_mode = if enforced { "enforce" } else { "report" };
    let gate_ok = last_ratio.is_nan() || last_ratio >= min_ratio;
    let ratio_json =
        if last_ratio.is_nan() { "null".to_string() } else { format!("{last_ratio:.3}") };

    let json = format!(
        "{{\n  \"bench\": \"hotspot\",\n  \"points\": {points:?},\n  \
         \"adds_per_task\": {adds},\n  \"root_pkt_ns\": {ROOT_PKT_NS},\n  \
         \"hotspot_gate_mode\": \"{gate_mode}\",\n  \
         \"hotspot_gate_min_ratio\": {min_ratio},\n  \
         \"ratio_at_largest\": {ratio_json},\n  \"hotspot_gate_ok\": {gate_ok},\n  \
         \"chaos_nodes\": {CHAOS_NODES},\n  \"chaos_seed\": {CHAOS_SEED},\n  \
         \"chaos_ops\": {},\n  \"chaos_retransmits\": {},\n  \"chaos_dupes_dropped\": {},\n  \
         \"chaos_exactly_once\": true,\n  \"runs\": [\n{}\n  ]\n}}\n",
        chaos.ops,
        chaos.retransmits,
        chaos.dupes_dropped,
        rows.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_hotspot.json", json).expect("write BENCH_hotspot.json");

    if gate_ok {
        println!("hotspot gate ({gate_mode}): ok — {last_ratio:.2}x >= {min_ratio}x");
    } else if enforced {
        eprintln!("hotspot gate FAILED: combined/uncombined {last_ratio:.2}x < {min_ratio}x");
        std::process::exit(1);
    } else {
        eprintln!("hotspot gate (report): {last_ratio:.2}x < {min_ratio}x");
    }
}
