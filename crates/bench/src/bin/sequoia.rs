//! A standalone reimplementation of the (modified) Sequoia message-rate
//! benchmark the paper uses for Figure 5: pairs of ranks flood each other
//! with small messages, all receives pre-posted behind a barrier, message
//! rate reported at the end.
//!
//! ```text
//! sequoia [--ppn N] [--msgs N] [--size BYTES] [--wildcard] [--mpi|--pami]
//! ```

use pami_bench::{measure_message_rate, mmps, MeasuredRateSeries};

struct Args {
    ppn: usize,
    msgs: usize,
    wildcard: bool,
    pami: bool,
}

fn parse() -> Args {
    let mut args = Args { ppn: 2, msgs: 5000, wildcard: false, pami: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ppn" => {
                args.ppn = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--ppn needs a number"))
            }
            "--msgs" => {
                args.msgs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--msgs needs a number"))
            }
            "--wildcard" => args.wildcard = true,
            "--pami" => args.pami = true,
            "--mpi" => args.pami = false,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: sequoia [--ppn N] [--msgs N] [--wildcard] [--mpi|--pami]");
    std::process::exit(2);
}

fn main() {
    let args = parse();
    let series = if args.pami {
        MeasuredRateSeries::Pami
    } else if args.wildcard {
        MeasuredRateSeries::MpiWildcard
    } else {
        MeasuredRateSeries::MpiNamed
    };
    println!(
        "sequoia message-rate: {} / ppn {} / {} msgs per pair{}",
        if args.pami { "PAMI" } else { "MPI" },
        args.ppn,
        args.msgs,
        if args.wildcard { " / ANY_SOURCE receives" } else { "" },
    );
    let rate = measure_message_rate(series, args.ppn, args.msgs);
    println!("aggregate rate: {}", mmps(rate));
}
