//! Measurement harnesses for the paper's tables and figures.
//!
//! Every experiment has up to two modes:
//!
//! * **measured** — runs the functional PAMI/MPI stack of this workspace on
//!   a host-scaled configuration (a few nodes, a few processes) and
//!   reports real wall-clock numbers. Software-structure effects (PAMI vs
//!   MPI overhead, eager vs rendezvous copies, lock disciplines) show up
//!   here. On a single-core host, effects that need hardware parallelism
//!   (commthread speedups) do not.
//! * **modeled** — evaluates the `bgq-netsim` timing models at the paper's
//!   scale (2048 nodes, 32 ppn, ten links), reproducing the shape of every
//!   curve.
//!
//! The `repro` binary prints both, labeled, next to the paper's numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pami::{Client, Context, Endpoint, Machine, MemRegion, PayloadSource, Recv, SendArgs, StaticPolicy};
use pami_mpi::{LibFlavor, Mpi, MpiConfig, ThreadLevel, ANY_SOURCE};

/// Format a seconds value as microseconds with two decimals.
pub fn us(t: f64) -> String {
    format!("{:.2}us", t * 1e6)
}

/// Format a bytes/second value as MB/s (decimal, like the paper).
pub fn mbs(bw: f64) -> String {
    format!("{:.0}MB/s", bw / 1e6)
}

/// Format a messages/second value as millions of messages per second.
pub fn mmps(rate: f64) -> String {
    format!("{:.2}MMPS", rate / 1e6)
}

// ---------------------------------------------------------------------------
// Table 1 (measured): PAMI half round trip
// ---------------------------------------------------------------------------

/// Functional PAMI ping-pong between two nodes, driven from one thread for
/// reproducible timing. Returns the average half-round-trip time.
pub fn measure_pami_half_rtt(immediate: bool, payload: usize, iters: u32) -> Duration {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "bench", 1);
    let c1 = Client::create(&machine, 1, "bench", 1);
    let pings = Arc::new(AtomicU64::new(0));
    let pongs = Arc::new(AtomicU64::new(0));
    let count = |cell: &Arc<AtomicU64>| {
        let cell = Arc::clone(cell);
        let f: pami::context::DispatchFn = Arc::new(move |_: &Context, msg, first| {
            assert_eq!(first.len() as u64, msg.len);
            cell.fetch_add(1, Ordering::Relaxed);
            Recv::Done
        });
        f
    };
    c1.context(0).set_dispatch(1, count(&pings));
    c0.context(0).set_dispatch(1, count(&pongs));
    let data = vec![0u8; payload];

    let send = |ctx: &Arc<Context>, dest: u32| {
        if immediate {
            ctx.send_immediate(Endpoint::of_task(dest), 1, b"", &data).unwrap();
        } else {
            ctx.send(SendArgs {
                dest: Endpoint::of_task(dest),
                dispatch: 1,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(bytes::Bytes::copy_from_slice(&data)),
                local_done: None,
            }).unwrap();
        }
    };

    let run_iters = |iters: u64, timed: bool| -> Duration {
        let base_ping = pings.load(Ordering::Relaxed);
        let base_pong = pongs.load(Ordering::Relaxed);
        let start = Instant::now();
        for i in 1..=iters {
            send(c0.context(0), 1);
            while pings.load(Ordering::Relaxed) < base_ping + i {
                c0.context(0).advance();
                c1.context(0).advance();
            }
            send(c1.context(0), 0);
            while pongs.load(Ordering::Relaxed) < base_pong + i {
                c1.context(0).advance();
                c0.context(0).advance();
            }
        }
        if timed { start.elapsed() } else { Duration::ZERO }
    };
    run_iters(100, false);
    run_iters(iters as u64, true) / (2 * iters)
}

// ---------------------------------------------------------------------------
// Table 2 (measured): MPI half round trip per configuration
// ---------------------------------------------------------------------------

/// A Table 2 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// Thread-optimized (vs classic) library.
    pub thread_optimized: bool,
    /// MPI_THREAD_MULTIPLE (vs SINGLE).
    pub thread_multiple: bool,
    /// Commthreads enabled.
    pub commthreads: bool,
}

impl Table2Row {
    /// Human-readable row label.
    pub fn label(&self) -> String {
        format!(
            "{:<11} / {:<15} / commthread {}",
            if self.thread_optimized { "Thread Opt." } else { "Classic" },
            if self.thread_multiple { "Thread Multiple" } else { "Thread Single" },
            if self.commthreads { "enabled" } else { "disabled" },
        )
    }

    fn config(&self) -> MpiConfig {
        MpiConfig {
            flavor: if self.thread_optimized {
                LibFlavor::ThreadOptimized
            } else {
                LibFlavor::Classic
            },
            thread_level: if self.thread_multiple {
                ThreadLevel::Multiple
            } else {
                ThreadLevel::Single
            },
            contexts: 1,
            commthreads: Some(usize::from(self.commthreads)),
        }
    }
}

/// Functional MPI ping-pong (8-byte payload) for a Table 2 configuration;
/// both ranks driven from the calling thread.
pub fn measure_mpi_half_rtt(row: Table2Row, iters: u32) -> Duration {
    let machine = Machine::with_nodes(2).build();
    let mpi0 = Mpi::init(&machine, 0, row.config());
    let mpi1 = Mpi::init(&machine, 1, row.config());
    let w0 = mpi0.world().clone();
    let w1 = mpi1.world().clone();
    let buf0 = MemRegion::zeroed(8);
    let buf1 = MemRegion::zeroed(8);

    let round = |timed: bool| -> Duration {
        let start = Instant::now();
        let r1 = mpi1.irecv(&buf1, 0, 8, 0, 1, &w1);
        let s0 = mpi0.isend(&buf0, 0, 8, 1, 1, &w0);
        while !mpi1.request_complete(r1) {
            mpi0.advance();
            mpi1.advance();
        }
        mpi1.test(r1);
        mpi0.wait(s0);
        let r0 = mpi0.irecv(&buf0, 0, 8, 1, 2, &w0);
        let s1 = mpi1.isend(&buf1, 0, 8, 0, 2, &w1);
        while !mpi0.request_complete(r0) {
            mpi1.advance();
            mpi0.advance();
        }
        mpi0.test(r0);
        mpi1.wait(s1);
        if timed { start.elapsed() } else { Duration::ZERO }
    };
    for _ in 0..50 {
        round(false);
    }
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        total += round(true);
    }
    total / (2 * iters)
}

// ---------------------------------------------------------------------------
// Figure 5 (measured): message rate
// ---------------------------------------------------------------------------

/// Which functional message-rate series to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasuredRateSeries {
    /// Raw PAMI sends, counted at the receiver.
    Pami,
    /// MPI isend/irecv with explicit source ranks.
    MpiNamed,
    /// MPI with ANY_SOURCE receives.
    MpiWildcard,
}

/// Host-scaled message-rate benchmark: `ppn` sender ranks on node 0 flood
/// paired receiver ranks on node 1 with `msgs` 8-byte messages each
/// (receives pre-posted, Sequoia-style). All ranks are driven round-robin
/// by this thread; the result is messages per second of wall time.
pub fn measure_message_rate(series: MeasuredRateSeries, ppn: usize, msgs: usize) -> f64 {
    let machine = Machine::with_nodes(2).ppn(ppn).build();
    match series {
        MeasuredRateSeries::Pami => {
            let clients: Vec<Arc<Client>> =
                (0..2 * ppn).map(|t| Client::create(&machine, t as u32, "rate", 1)).collect();
            let got = Arc::new(AtomicU64::new(0));
            for c in &clients[ppn..] {
                let got = Arc::clone(&got);
                c.context(0).set_dispatch(
                    1,
                    Arc::new(move |_: &Context, _msg, _first| {
                        got.fetch_add(1, Ordering::Relaxed);
                        Recv::Done
                    }),
                );
            }
            let start = Instant::now();
            for i in 0..msgs {
                for (s, sender) in clients[..ppn].iter().enumerate() {
                    sender.context(0).send(SendArgs {
                        dest: Endpoint::of_task((ppn + s) as u32),
                        dispatch: 1,
                        metadata: Vec::new(),
                        payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[0u8; 8])),
                        local_done: None,
                    }).unwrap();
                }
                if i % 16 == 0 {
                    for c in &clients {
                        c.context(0).advance();
                    }
                }
            }
            while got.load(Ordering::Relaxed) < (msgs * ppn) as u64 {
                for c in &clients {
                    c.context(0).advance();
                }
            }
            (msgs * ppn) as f64 / start.elapsed().as_secs_f64()
        }
        MeasuredRateSeries::MpiNamed | MeasuredRateSeries::MpiWildcard => {
            let wildcard = series == MeasuredRateSeries::MpiWildcard;
            let ranks: Vec<Mpi> = (0..2 * ppn)
                .map(|t| Mpi::init(&machine, t as u32, MpiConfig::default()))
                .collect();
            let bufs: Vec<MemRegion> =
                (0..2 * ppn).map(|_| MemRegion::zeroed(8 * msgs)).collect();
            // Pre-post all receives (the paper adds a barrier "to eliminate
            // unexpected messages").
            let mut reqs: Vec<Vec<pami_mpi::Request>> = Vec::new();
            for r in 0..ppn {
                let mpi = &ranks[ppn + r];
                let world = mpi.world().clone();
                let src = if wildcard { ANY_SOURCE } else { r as i32 };
                reqs.push(
                    (0..msgs)
                        .map(|i| mpi.irecv(&bufs[ppn + r], i * 8, 8, src, i as i32, &world))
                        .collect(),
                );
            }
            let start = Instant::now();
            let mut send_reqs = Vec::new();
            for (s, rank) in ranks.iter().take(ppn).enumerate() {
                let world = rank.world().clone();
                for i in 0..msgs {
                    send_reqs.push((s, rank.isend(&bufs[s], i * 8, 8, ppn + s, i as i32, &world)));
                }
            }
            loop {
                let mut done = true;
                for (r, rs) in reqs.iter().enumerate() {
                    let mpi = &ranks[ppn + r];
                    mpi.advance();
                    if rs.iter().any(|req| !mpi.request_complete(*req)) {
                        done = false;
                    }
                }
                for rank in ranks.iter().take(ppn) {
                    rank.advance();
                }
                if done {
                    break;
                }
            }
            let rate = (msgs * ppn) as f64 / start.elapsed().as_secs_f64();
            for (s, req) in send_reqs {
                ranks[s].wait(req);
            }
            rate
        }
    }
}

/// Multi-context message rate (the paper's Figure 5 parallelism shape): one
/// sender client on node 0 with `contexts` PAMI contexts and **one thread
/// per context**, each flooding its paired receiver context on node 1 with
/// `msgs` 8-byte messages. Every thread drives exactly its own context pair
/// — contexts are independent, lock-free channels, so no thread ever takes
/// a context lock and the aggregate rate scales with hardware threads.
pub fn measure_message_rate_multi(contexts: usize, msgs: usize) -> f64 {
    measure_message_rate_multi_stats(contexts, msgs).wall_rate
}

/// Cumulative on-CPU nanoseconds for the *calling thread*, from
/// `/proc/thread-self/schedstat` (first field). Returns `None` off Linux or
/// when the file is unreadable, so callers can degrade to wall-clock rates.
pub fn thread_cpu_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    s.split_whitespace().next()?.parse().ok()
}

/// Result of one multi-context rate measurement, with both accounting modes.
///
/// On hosts with fewer cores than contexts (CI containers are often 1-core),
/// the wall-clock aggregate rate *cannot* exceed the single-context rate no
/// matter how well the software scales — the threads time-slice one core. The
/// CPU critical-path rate divides total messages by the **maximum per-thread
/// on-CPU time**: the wall time the run would take given one core per thread,
/// i.e. the quantity that actually measures software scalability (lock
/// contention and shared-cache-line traffic inflate per-thread CPU time and
/// show up here; scheduler time-slicing does not).
#[derive(Debug, Clone, Copy)]
pub struct MultiRateStats {
    pub contexts: usize,
    pub msgs_per_context: usize,
    /// Aggregate messages / wall seconds (scheduler-limited on small hosts).
    pub wall_rate: f64,
    /// Aggregate messages / max-thread-CPU seconds (`None` if schedstat is
    /// unavailable on this platform).
    pub cpu_rate: Option<f64>,
    /// The critical-path thread's on-CPU nanoseconds for the run.
    pub max_thread_cpu_ns: Option<u64>,
}

/// Multi-context message rate with per-thread CPU accounting. Same harness as
/// [`measure_message_rate_multi`]; each flood thread additionally samples its
/// own schedstat before and after the run.
pub fn measure_message_rate_multi_stats(contexts: usize, msgs: usize) -> MultiRateStats {
    assert!(contexts >= 1);
    let machine = Machine::with_nodes(2).build();
    let sender = Client::create(&machine, 0, "mrate", contexts);
    let receiver = Client::create(&machine, 1, "mrate", contexts);
    let got: Vec<Arc<AtomicU64>> =
        (0..contexts).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, g) in got.iter().enumerate() {
        let g = Arc::clone(g);
        receiver.context(i).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                g.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    let cpu_deltas: Mutex<Vec<Option<u64>>> = Mutex::new(Vec::with_capacity(contexts));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (i, g) in got.iter().enumerate() {
            let stx = Arc::clone(sender.context(i));
            let rtx = Arc::clone(receiver.context(i));
            let g = Arc::clone(g);
            let cpu_deltas = &cpu_deltas;
            s.spawn(move || {
                let cpu0 = thread_cpu_ns();
                for k in 0..msgs {
                    stx.send(SendArgs {
                        dest: Endpoint { task: 1, context: i as u16 },
                        dispatch: 1,
                        metadata: Vec::new(),
                        payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[0u8; 8])),
                        local_done: None,
                    }).unwrap();
                    if k % 16 == 0 {
                        stx.advance();
                        rtx.advance();
                    }
                }
                while g.load(Ordering::Relaxed) < msgs as u64 {
                    stx.advance();
                    rtx.advance();
                }
                let delta = match (cpu0, thread_cpu_ns()) {
                    (Some(a), Some(b)) => Some(b.saturating_sub(a)),
                    _ => None,
                };
                cpu_deltas.lock().push(delta);
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total_msgs = (msgs * contexts) as f64;
    let deltas = cpu_deltas.into_inner();
    let max_thread_cpu_ns = if deltas.len() == contexts && deltas.iter().all(Option::is_some) {
        deltas.iter().map(|d| d.unwrap()).max()
    } else {
        None
    };
    let cpu_rate = max_thread_cpu_ns
        .filter(|&ns| ns > 0)
        .map(|ns| total_msgs / (ns as f64 * 1e-9));
    MultiRateStats {
        contexts,
        msgs_per_context: msgs,
        wall_rate: total_msgs / wall,
        cpu_rate,
        max_thread_cpu_ns,
    }
}

// ---------------------------------------------------------------------------
// Three-tier ladder: short-tier rate vs forced-eager, persistent channels,
// learned cutoffs
// ---------------------------------------------------------------------------

/// Single-context flood 0 → 1 with `len`-byte payloads, counted at the
/// receiver. Under the default policy a `len` at or below the short cutoff
/// takes the short tier (one inline packet, no region registration, no
/// completion counter). With `force_eager` the machine is built with
/// `StaticPolicy::with_short(0, …)` — the pre-ladder behaviour where the
/// same payload pays the full eager path — so the pair
/// `(measure_rate_at_len(128, n, false), measure_rate_at_len(128, n, true))`
/// is the short-tier speedup at the cutoff.
pub fn measure_rate_at_len(len: usize, msgs: usize, force_eager: bool) -> f64 {
    let mut builder = Machine::with_nodes(2);
    if force_eager {
        builder = builder.protocol_policy(Arc::new(StaticPolicy::with_short(0, 4096)));
    }
    let machine = builder.build();
    let sender = Client::create(&machine, 0, "tier", 1);
    let receiver = Client::create(&machine, 1, "tier", 1);
    let got = Arc::new(AtomicU64::new(0));
    {
        let got = Arc::clone(&got);
        receiver.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                got.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    let payload = bytes::Bytes::from(vec![0u8; len]);
    let start = Instant::now();
    for i in 0..msgs {
        sender
            .context(0)
            .send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: 1,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(payload.clone()),
                local_done: None,
            })
            .unwrap();
        if i % 16 == 0 {
            sender.context(0).advance();
            receiver.context(0).advance();
        }
    }
    while got.load(Ordering::Relaxed) < msgs as u64 {
        sender.context(0).advance();
        receiver.context(0).advance();
    }
    msgs as f64 / start.elapsed().as_secs_f64()
}

/// What one fine-grained random-target flood arm measured.
pub struct AggrRateStats {
    /// Delivered messages per second.
    pub rate: f64,
    /// Coalesced frames injected (`aggr.frames`; 0 on the off arm or with
    /// telemetry compiled out).
    pub frames: u64,
    /// Records that rode those frames (`aggr.batched_msgs`).
    pub batched: u64,
}

impl AggrRateStats {
    /// Mean records per frame; 0 when no frames were cut.
    pub fn mean_batch(&self) -> f64 {
        if self.frames > 0 { self.batched as f64 / self.frames as f64 } else { 0.0 }
    }
}

/// Fine-grained random-target flood: one sender context sprays 16–64 B
/// messages over seven destination nodes, target and size drawn from a
/// fixed LCG so both arms see the identical stream. With `aggregated` the
/// machine coalesces per destination ([`pami::AggrConfig`] defaults: 128 B
/// cutoff, 512 B frames, 100 µs age bound); without it the same payloads
/// ride the short tier one packet each — the TRAM-style A/B. The receiver
/// contexts are advanced on the sender's cadence either way, so the pair
/// differs only in the injection path.
pub fn measure_aggr_rate(aggregated: bool, msgs: usize) -> AggrRateStats {
    aggr_flood(aggregated, None, msgs).0
}

/// The same coalesced flood under a seeded hostile plan: frames ride the
/// selective-repeat channel, so drops and corruption cost whole-frame
/// retransmits and every record must still land exactly once — asserted
/// here (the drain over-pumps and re-checks the count), with the RAS
/// evidence returned so the caller can prove the plan actually bit.
pub fn measure_aggr_chaos(plan: pami::FaultPlan, msgs: usize) -> (AggrRateStats, ChaosStats) {
    aggr_flood(true, Some(plan), msgs)
}

fn aggr_flood(
    aggregated: bool,
    plan: Option<pami::FaultPlan>,
    msgs: usize,
) -> (AggrRateStats, ChaosStats) {
    const NODES: usize = 8;
    let mut builder = Machine::with_nodes(NODES);
    if aggregated {
        builder = builder.aggregation(pami::AggrConfig::default());
    }
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let machine = builder.build();
    let sender = Client::create(&machine, 0, "aggr", 1);
    let receivers: Vec<_> =
        (1..NODES as u32).map(|t| Client::create(&machine, t, "aggr", 1)).collect();
    let got = Arc::new(AtomicU64::new(0));
    for r in &receivers {
        let got = Arc::clone(&got);
        r.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                got.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    let blob = bytes::Bytes::from(vec![0u8; 64]);
    let mut lcg: u64 = 0x9E3779B97F4A7C15;
    let ctx = sender.context(0);
    let start = Instant::now();
    for i in 0..msgs {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dest = 1 + ((lcg >> 33) % (NODES as u64 - 1)) as u32;
        let len = 16 + ((lcg >> 20) % 49) as usize; // 16..=64 B
        ctx.send(SendArgs {
            dest: Endpoint::of_task(dest),
            dispatch: 1,
            metadata: Vec::new(),
            payload: PayloadSource::Immediate(blob.slice(..len)),
            local_done: None,
        })
        .unwrap();
        if i % 16 == 0 {
            ctx.advance();
            for r in &receivers {
                r.context(0).advance();
            }
        }
    }
    ctx.flush_aggr();
    while got.load(Ordering::Relaxed) < msgs as u64 {
        ctx.advance();
        for r in &receivers {
            r.context(0).advance();
        }
    }
    let rate = msgs as f64 / start.elapsed().as_secs_f64();
    // Exactly-once: keep pumping past completion — a late duplicate (a
    // retransmitted frame unbatched twice) would push the count over.
    for _ in 0..64 {
        ctx.advance();
        for r in &receivers {
            r.context(0).advance();
        }
    }
    assert_eq!(got.load(Ordering::Relaxed), msgs as u64, "aggregated flood exactly-once");
    let snap = machine.telemetry().snapshot();
    let ras = machine.fabric().ras_counters();
    let dropped =
        (0..NODES as u32).map(|n| machine.fabric().counters(n).packets_dropped.value()).sum();
    (
        AggrRateStats {
            rate,
            frames: snap.counter("aggr.frames"),
            batched: snap.counter("aggr.batched_msgs"),
        },
        ChaosStats {
            rate,
            retransmits: ras.retransmits.value(),
            sack_retransmits: ras.sack_retransmits.value(),
            crc_errors: ras.crc_errors.value(),
            packets_dropped: dropped,
        },
    )
}

/// What one persistent-channel halo run measured.
pub struct PersistentHaloStats {
    /// Timed iterations (one bidirectional post/post/wait/wait each).
    pub iters: usize,
    /// Per-iteration wall time percentiles, nanoseconds.
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// Mean per-iteration wall time, nanoseconds.
    pub mean_ns: f64,
    /// Matching-engine events during the timed loop (posted + unexpected
    /// matches). Persistent traffic is pre-negotiated direct puts, so this
    /// stays **flat at zero** — the zero-matching claim, measured.
    pub match_events: u64,
    /// `ctx.sends_eager` + `ctx.sends_rzv` for the whole run: the
    /// steady-state exchange never re-enters the protocol ladder.
    pub ladder_sends: u64,
}

/// Persistent-channel halo: two nodes pre-negotiate one channel each way,
/// then run `iters` bidirectional boundary exchanges of `size` bytes —
/// every iteration is two fixed-descriptor injections and two counter
/// waits, with zero matching and zero protocol decisions. Returns the
/// per-iteration latency distribution plus the counters that prove the
/// zero-* claims (all zeros with telemetry compiled out).
pub fn measure_persistent_halo(size: usize, iters: usize) -> PersistentHaloStats {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "halo", 1);
    let c1 = Client::create(&machine, 1, "halo", 1);
    let mut a = c0.context(0).channel(Endpoint::of_task(1), size).unwrap();
    let mut b = c1.context(0).channel(Endpoint::of_task(0), size).unwrap();
    let data = vec![3u8; size];
    let mut buf = vec![0u8; size];
    let mut step = |a: &mut pami::PersistentChannel, b: &mut pami::PersistentChannel| {
        a.post(&data).unwrap();
        b.post(&data).unwrap();
        b.wait(&mut buf).unwrap();
        a.wait(&mut buf).unwrap();
    };
    // Warm-up binds both channels and touches both double-buffer slots.
    for _ in 0..8 {
        step(&mut a, &mut b);
    }
    let match_before = {
        let snap = machine.telemetry().snapshot();
        snap.counter("match.matched_posted") + snap.counter("match.matched_unexpected")
    };
    let mut ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        step(&mut a, &mut b);
        ns.push(t.elapsed().as_nanos() as u64);
    }
    let mean_ns = ns.iter().sum::<u64>() as f64 / iters as f64;
    ns.sort_unstable();
    let pct = |p: f64| ns[((ns.len() - 1) as f64 * p).round() as usize];
    let snap = machine.telemetry().snapshot();
    PersistentHaloStats {
        iters,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        mean_ns,
        match_events: snap.counter("match.matched_posted")
            + snap.counter("match.matched_unexpected")
            - match_before,
        ladder_sends: snap.counter("ctx.sends_eager") + snap.counter("ctx.sends_rzv"),
    }
}

/// Run a mixed windowed stream under the adaptive policy and report the
/// learned per-destination boundaries: destination 1 sees payload lengths
/// cycling through 32…512 B (the short/eager signal), destination 2 sees
/// 16 KiB messages (the eager/rendezvous signal, as in
/// [`measure_policy_ab`]). Returns
/// `(short_crossover(dest 1), crossover(dest 2))` after `msgs` windowed
/// rounds — with telemetry compiled out the adaptive policy never moves, so
/// both come back at their initial values.
pub fn measure_adaptive_cutoffs(msgs: usize) -> (usize, usize) {
    const LENS: [usize; 5] = [32, 64, 128, 256, 512];
    const LARGE: usize = 16 * 1024;
    let machine = Machine::with_nodes(3).eager_limit(32 * 1024).adaptive_policy().build();
    let sender = Client::create(&machine, 0, "cut", 1);
    let recvs: Vec<Arc<Client>> =
        (1..3u32).map(|t| Client::create(&machine, t, "cut", 1)).collect();
    let got = Arc::new(AtomicU64::new(0));
    for c in &recvs {
        let got = Arc::clone(&got);
        let sink = MemRegion::zeroed(LARGE);
        c.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                let got = Arc::clone(&got);
                Recv::Into {
                    region: sink.clone(),
                    offset: 0,
                    on_complete: Box::new(move |_, _result| {
                        got.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            }),
        );
    }
    let small = MemRegion::from_vec(vec![1u8; 512]);
    let large = MemRegion::from_vec(vec![2u8; LARGE]);
    for i in 0..msgs {
        for (dest, region, len) in
            [(1u32, &small, LENS[i % LENS.len()]), (2u32, &large, LARGE)]
        {
            let before = got.load(Ordering::Relaxed);
            sender
                .context(0)
                .send(SendArgs {
                    dest: Endpoint::of_task(dest),
                    dispatch: 1,
                    metadata: Vec::new(),
                    payload: PayloadSource::Region { region: region.clone(), offset: 0, len },
                    local_done: None,
                })
                .unwrap();
            while got.load(Ordering::Relaxed) == before {
                sender.context(0).advance();
                for c in &recvs {
                    c.context(0).advance();
                }
            }
        }
    }
    let policy = machine.policy();
    (policy.short_crossover(1), policy.crossover(2))
}

// ---------------------------------------------------------------------------
// Protocol-policy A/B: adaptive vs static eager/rendezvous crossover
// ---------------------------------------------------------------------------

/// Mixed-size protocol-policy A/B over a windowed (latency-bound) request
/// loop. Task 0 alternates 256 B (unambiguously eager) messages to task 1
/// with 16 KiB messages to task 2, waiting for each delivery before
/// posting the next, so per-message completion latency — exactly the
/// signal the adaptive policy optimises — dominates the measured rate. The
/// machine's static crossover is 32 KiB, a plausible default for hardware
/// whose MU moves eager payloads for free, but wrong on this host's
/// simulated MU: a 16 KiB eager message fragments into a string of staged
/// packet copies (~2.4x the wall cost of the alternative), while
/// rendezvous pulls the payload zero-copy after one RTS round trip. The
/// static policy eats that cost on every large message forever; the
/// adaptive policy compares eager delivery time against rendezvous round
/// trips per destination from live telemetry feedback, walks the task-2
/// crossover down below 16 KiB, and switches the large stream to
/// rendezvous — while leaving the task-1 crossover (whose small messages
/// eager serves well) alone. Returns messages per second of wall time,
/// including the adaptive arm's convergence transient.
///
/// With the `telemetry` feature compiled out the adaptive policy degrades
/// to the static decision (no measurements), so the two rates tie.
pub fn measure_policy_ab(adaptive: bool, msgs: usize) -> f64 {
    const SMALL: usize = 256;
    const LARGE: usize = 16 * 1024;
    let mut builder = Machine::with_nodes(3).eager_limit(32 * 1024);
    if adaptive {
        builder = builder.adaptive_policy();
    }
    let machine = builder.build();
    let sender = Client::create(&machine, 0, "ab", 1);
    let recvs: Vec<Arc<Client>> =
        (1..3u32).map(|t| Client::create(&machine, t, "ab", 1)).collect();
    let got = Arc::new(AtomicU64::new(0));
    for c in &recvs {
        let got = Arc::clone(&got);
        let sink = MemRegion::zeroed(LARGE);
        c.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                let got = Arc::clone(&got);
                Recv::Into {
                    region: sink.clone(),
                    offset: 0,
                    on_complete: Box::new(move |_, _result| {
                        got.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            }),
        );
    }
    let small = MemRegion::from_vec(vec![1u8; SMALL]);
    let large = MemRegion::from_vec(vec![2u8; LARGE]);
    let advance_all = |sender: &Arc<Client>, recvs: &[Arc<Client>]| {
        sender.context(0).advance();
        for c in recvs {
            c.context(0).advance();
        }
    };
    let total = (msgs * 2) as u64;
    let start = Instant::now();
    for _ in 0..msgs {
        for (dest, region, len) in [(1u32, &small, SMALL), (2u32, &large, LARGE)] {
            let before = got.load(Ordering::Relaxed);
            sender.context(0).send(SendArgs {
                dest: Endpoint::of_task(dest),
                dispatch: 1,
                metadata: Vec::new(),
                payload: PayloadSource::Region { region: region.clone(), offset: 0, len },
                local_done: None,
            }).unwrap();
            while got.load(Ordering::Relaxed) == before {
                advance_all(&sender, &recvs);
            }
        }
    }
    debug_assert_eq!(got.load(Ordering::Relaxed), total);
    total as f64 / start.elapsed().as_secs_f64()
}

/// p50/p99 of the context-post → execution handoff, measured over a
/// commthread pool draining `posts` work items. Returns
/// `((ctx_p50, ctx_p99), (commthread_p50, commthread_p99))` in
/// nanoseconds — `ctx.handoff_ns` counts every advancing thread,
/// `commthread.handoff_ns` only the pool's threads. All zeros with the
/// `telemetry` feature compiled out.
pub fn measure_handoff_percentiles(posts: usize) -> ((u64, u64), (u64, u64)) {
    use pami::CommThreadPool;
    let machine = Machine::with_nodes(1).build();
    let client = Client::create(&machine, 0, "handoff", 1);
    let pool = CommThreadPool::spawn(vec![Arc::clone(client.context(0))], 1);
    let ran = Arc::new(AtomicU64::new(0));
    for i in 0..posts {
        let ran_in = Arc::clone(&ran);
        client.context(0).post(Box::new(move |_| {
            ran_in.fetch_add(1, Ordering::Relaxed);
        }));
        // Let the pool drain every few posts so the histogram samples both
        // the parked-wakeup and already-running cases.
        if i % 8 == 7 {
            let target = (i + 1) as u64;
            let deadline = Instant::now() + Duration::from_secs(10);
            while ran.load(Ordering::Relaxed) < target {
                assert!(Instant::now() < deadline, "commthread made no progress");
                std::thread::yield_now();
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while ran.load(Ordering::Relaxed) < posts as u64 {
        assert!(Instant::now() < deadline, "commthread made no progress");
        std::thread::yield_now();
    }
    pool.shutdown();
    let snap = machine.telemetry().snapshot();
    let pair = |name: &str| snap.histogram(name).map(|h| (h.p50, h.p99)).unwrap_or((0, 0));
    (pair("ctx.handoff_ns"), pair("commthread.handoff_ns"))
}

// ---------------------------------------------------------------------------
// pamistat: a whole-stack telemetry sample
// ---------------------------------------------------------------------------

/// Run a small whole-stack workload on one machine and return its
/// (`telemetry.json`, chrome-trace JSON, RAS-event JSONL) triple — the
/// `pamistat` report.
///
/// The workload deliberately crosses every instrumented layer so the
/// report has non-zero counters from each: MU fabric traffic (`mu.*`,
/// including rendezvous RDMA), context advance/sends (`ctx.*`), MPI
/// matching with pre-posted, unexpected, and wildcard receives
/// (`match.*`), hardware collectives with per-phase timing (`coll.*`),
/// a commthread pool servicing posted work (`commthread.*`), and — on a
/// fault-injected side machine that shares the same UPC registry — the
/// reliability layer (`ras.*`: retransmits, SACK retransmits, CRC
/// errors, reorder depth). The side machine's RAS event ring is drained
/// into the third string (one JSON object per line, oldest first) so a
/// chaos run is diagnosable from the telemetry artifacts alone.
///
/// With the `telemetry` feature off the first two strings are valid but
/// empty reports (the probes compile to no-ops); the RAS ring is
/// feature-independent and stays populated.
pub fn pamistat_sample() -> (String, String, String) {
    use pami::coll::Algorithm;
    use pami::CommThreadPool;

    let machine = Machine::with_nodes(2).ppn(2).build();
    machine.run(|env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        env.machine.task_barrier();
        let world = mpi.world().clone();
        let me = world.rank();
        let n = world.size();
        world.optimize().expect("world is rectangular");

        // Pre-posted ring exchange, large enough for rendezvous RDMA
        // (64 KiB > the 4 KiB eager limit).
        const LEN: usize = 64 * 1024;
        let rbuf = MemRegion::zeroed(LEN);
        let sbuf = MemRegion::from_vec(vec![me as u8; LEN]);
        let from = (me + n - 1) % n;
        let to = (me + 1) % n;
        let r = mpi.irecv(&rbuf, 0, LEN, from as i32, 7, &world);
        mpi.barrier(&world);
        let s = mpi.isend(&sbuf, 0, LEN, to, 7, &world);
        mpi.wait(r);
        mpi.wait(s);

        // Unexpected + wildcard traffic: everyone fires at rank 0 before
        // it posts, then rank 0 drains with ANY_SOURCE/ANY_TAG.
        if me != 0 {
            mpi.send(&sbuf, 0, 8, 0, 100 + me as i32, &world);
        }
        mpi.barrier(&world);
        if me == 0 {
            for _ in 0..n - 1 {
                let b = MemRegion::zeroed(8);
                mpi.recv(&b, 0, 8, ANY_SOURCE, pami_mpi::ANY_TAG, &world);
            }
        }

        // Collectives over the classroute: barrier, allreduce (parallel
        // local combine + pipelined network), broadcast.
        mpi.barrier(&world);
        let src = MemRegion::zeroed(1024);
        let dst = MemRegion::zeroed(1024);
        mpi.allreduce_with(
            Algorithm::HwCollNet,
            (&src, 0),
            (&dst, 0),
            128,
            pami::CollOp::Sum,
            pami::DataType::Float64,
            &world,
        );
        mpi.bcast_with(Algorithm::HwCollNet, &src, 0, 1024, 0, &world);
        mpi.barrier(&world);
    });

    // Commthread segment: a pool services posted work items on the same
    // machine (parks in the wakeup unit, wakes, runs the handoffs).
    let client = Client::create(&machine, 0, "stat", 1);
    let ran = Arc::new(AtomicU64::new(0));
    let pool = CommThreadPool::spawn(vec![Arc::clone(client.context(0))], 1);
    for _ in 0..8 {
        let ran = Arc::clone(&ran);
        client.context(0).post(Box::new(move |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while ran.load(Ordering::Relaxed) < 8 {
        assert!(Instant::now() < deadline, "commthread made no progress");
        std::thread::yield_now();
    }
    pool.shutdown();

    // Reliability segment: a hostile 1%+1% flood on a side machine that
    // shares the main sample's UPC registry, so the `ras.*` counters in
    // the report are non-zero and the RAS event ring has real entries.
    // Fixed seed — the sample is a deterministic fixture, not a soak.
    let ras_lines = {
        let plan = pami::FaultPlan::new()
            .seed(4242)
            .drop_rate(0.01)
            .corrupt_rate(0.01)
            .retry(pami::RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 64 });
        let chaos = Machine::with_nodes(2)
            .telemetry(machine.telemetry().clone())
            .fault_plan(plan)
            .build();
        let sender = Client::create(&chaos, 0, "stat-chaos", 1);
        let receiver = Client::create(&chaos, 1, "stat-chaos", 1);
        let got = Arc::new(AtomicU64::new(0));
        {
            let got = Arc::clone(&got);
            receiver.context(0).set_dispatch(
                1,
                Arc::new(move |_: &Context, _msg, _first| {
                    got.fetch_add(1, Ordering::Relaxed);
                    Recv::Done
                }),
            );
        }
        const CHAOS_MSGS: u64 = 2_000;
        for i in 0..CHAOS_MSGS {
            sender
                .context(0)
                .send(SendArgs {
                    dest: Endpoint::of_task(1),
                    dispatch: 1,
                    metadata: Vec::new(),
                    payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[0u8; 8])),
                    local_done: None,
                })
                .unwrap();
            if i % 16 == 0 {
                sender.context(0).advance();
                receiver.context(0).advance();
            }
        }
        while got.load(Ordering::Relaxed) < CHAOS_MSGS {
            sender.context(0).advance();
            receiver.context(0).advance();
        }
        let (events, overflowed) = chaos.fabric().ras_events();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        for e in &events {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{{\"tick\": {}, \"kind\": \"{}\", \"src_node\": {}, \"dst_node\": {}, \"detail\": {}}}",
                e.tick,
                e.kind.as_str(),
                e.src_node,
                e.dst_node,
                e.detail,
            );
        }
        use std::fmt::Write as _;
        let _ = writeln!(out, "{{\"ring_overflowed\": {overflowed}}}");
        out
    };

    // Combining segment: a hot-key fetch-add storm on a combining-enabled
    // side machine sharing the same UPC registry, so the `comb.*` counters
    // (requests, merges, root applies, replies) are non-zero in the report.
    {
        let comb_machine = Machine::with_nodes(4)
            .telemetry(machine.telemetry().clone())
            .combining(true)
            .build();
        let word = MemRegion::zeroed(8);
        let key = comb_machine.create_window(word.clone(), None);
        let clients: Vec<_> =
            (0..4).map(|t| Client::create(&comb_machine, t, "stat-comb", 1)).collect();
        const ADDS_PER_TASK: u64 = 16;
        let done = pami::Counter::new();
        done.add_expected(3 * ADDS_PER_TASK);
        for client in clients.iter().skip(1) {
            for _ in 0..ADDS_PER_TASK {
                client
                    .context(0)
                    .rmw(pami::RmwArgs {
                        dest_task: 0,
                        window: pami::WindowRef::base(key),
                        op: pami::RmwOp::FetchAdd,
                        operand: 1,
                        compare: 0,
                        result: None,
                        done: Some(done.clone()),
                    })
                    .unwrap();
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while !done.is_complete() {
            assert!(Instant::now() < deadline, "combining overlay made no progress");
            for client in &clients {
                client.context(0).advance();
            }
        }
        assert_eq!(word.read_i64(0) as u64, 3 * ADDS_PER_TASK, "hot word sums the storm");
    }

    // Aggregation segment: a fine-grained random-target flood on a
    // coalescing-enabled side machine sharing the same UPC registry, so the
    // `aggr.*` counters (batched records, frames, flush causes, unbatch)
    // and `ctx.sends_aggr` are non-zero in the report.
    {
        let aggr_machine = Machine::with_nodes(4)
            .telemetry(machine.telemetry().clone())
            .aggregation(pami::AggrConfig::default())
            .build();
        let sender = Client::create(&aggr_machine, 0, "stat-aggr", 1);
        let receivers: Vec<_> =
            (1..4).map(|t| Client::create(&aggr_machine, t, "stat-aggr", 1)).collect();
        let got = Arc::new(AtomicU64::new(0));
        for r in &receivers {
            let got = Arc::clone(&got);
            r.context(0).set_dispatch(
                1,
                Arc::new(move |_: &Context, _msg, _first| {
                    got.fetch_add(1, Ordering::Relaxed);
                    Recv::Done
                }),
            );
        }
        const AGGR_MSGS: u64 = 384;
        let ctx = sender.context(0);
        for i in 0..AGGR_MSGS {
            ctx.send(SendArgs {
                dest: Endpoint::of_task(1 + (i % 3) as u32),
                dispatch: 1,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[7u8; 24])),
                local_done: None,
            })
            .unwrap();
        }
        ctx.flush_aggr();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.load(Ordering::Relaxed) < AGGR_MSGS {
            assert!(Instant::now() < deadline, "aggregation sample made no progress");
            ctx.advance();
            for r in &receivers {
                r.context(0).advance();
            }
        }
    }

    let upc = machine.telemetry();
    (upc.report_json(), upc.chrome_trace_json(), ras_lines)
}

// ---------------------------------------------------------------------------
// Table 3 (measured): neighbor throughput
// ---------------------------------------------------------------------------

/// Functional bidirectional neighbor exchange: the reference task 0
/// exchanges `size`-byte messages with `k` neighbor tasks (each on its own
/// node); returns aggregate send+receive bytes per second at the
/// reference. `eager` selects the protocol by moving the eager limit.
pub fn measure_neighbor_throughput(k: usize, size: usize, eager: bool, reps: usize) -> f64 {
    let nodes = (k + 1).max(2);
    let machine = Machine::with_nodes(nodes)
        .eager_limit(if eager { usize::MAX / 2 } else { 1024 })
        .build();
    let ranks: Vec<Mpi> =
        (0..nodes).map(|t| Mpi::init(&machine, t as u32, MpiConfig::default())).collect();
    let world = ranks[0].world().clone();
    let send_buf: Vec<MemRegion> = (0..nodes).map(|_| MemRegion::zeroed(size)).collect();
    let recv_buf: Vec<MemRegion> = (0..nodes).map(|_| MemRegion::zeroed(size)).collect();

    let start = Instant::now();
    for rep in 0..reps {
        let tag = rep as i32;
        let mut reqs = Vec::new();
        for n in 1..=k {
            reqs.push((0, ranks[0].irecv(&recv_buf[0], 0, size, n as i32, tag, &world)));
            reqs.push((0, ranks[0].isend(&send_buf[0], 0, size, n, tag, &world)));
            let wn = ranks[n].world().clone();
            reqs.push((n, ranks[n].irecv(&recv_buf[n], 0, size, 0, tag, &wn)));
            reqs.push((n, ranks[n].isend(&send_buf[n], 0, size, 0, tag, &wn)));
        }
        loop {
            let mut done = true;
            for (owner, req) in &reqs {
                if !ranks[*owner].request_complete(*req) {
                    done = false;
                }
            }
            for r in ranks.iter().take(k + 1) {
                r.advance();
            }
            if done {
                break;
            }
        }
        for (owner, req) in reqs {
            ranks[owner].wait(req);
        }
    }
    (2 * k * size * reps) as f64 / start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Figures 6–10 (measured): collective latency/throughput at host scale
// ---------------------------------------------------------------------------

/// Which collective to measure functionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollBench {
    /// `MPI_Barrier` (Figure 6).
    Barrier,
    /// Single-double `MPI_Allreduce` (Figure 7); hardware path if true.
    AllreduceLatency { hw: bool },
    /// `size`-byte `MPI_Allreduce` (Figure 8).
    AllreduceBandwidth { size: usize, hw: bool },
    /// `size`-byte `MPI_Bcast` over the collective network (Figure 9).
    Broadcast { size: usize, hw: bool },
    /// `size`-byte 10-color rectangle broadcast (Figure 10).
    RectBroadcast { size: usize },
}

/// Run `rounds` iterations of a collective over `nodes`×`ppn` functional
/// ranks (one thread each) and return rank 0's average time per operation.
pub fn measure_collective(nodes: usize, ppn: usize, rounds: usize, which: CollBench) -> Duration {
    use pami::coll::Algorithm;
    let machine = Machine::with_nodes(nodes).ppn(ppn).build();
    let result = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
    let result2 = Arc::clone(&result);
    machine.run(move |env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        env.machine.task_barrier();
        let world = mpi.world().clone();
        let hw = match which {
            CollBench::AllreduceLatency { hw }
            | CollBench::AllreduceBandwidth { hw, .. }
            | CollBench::Broadcast { hw, .. } => hw,
            _ => true,
        };
        if hw {
            world.optimize().expect("world is rectangular");
        }
        let alg = if hw { Algorithm::HwCollNet } else { Algorithm::SwBinomial };
        let size = match which {
            CollBench::Barrier => 8,
            CollBench::AllreduceLatency { .. } => 8,
            CollBench::AllreduceBandwidth { size, .. }
            | CollBench::Broadcast { size, .. }
            | CollBench::RectBroadcast { size } => size,
        };
        let src = MemRegion::zeroed(size);
        let dst = MemRegion::zeroed(size);
        // Warm + synchronize.
        mpi.barrier(&world);
        let start = Instant::now();
        for _ in 0..rounds {
            match which {
                CollBench::Barrier => mpi.barrier(&world),
                CollBench::AllreduceLatency { .. } => mpi.allreduce_with(
                    alg,
                    (&src, 0),
                    (&dst, 0),
                    1,
                    pami::CollOp::Sum,
                    pami::DataType::Float64,
                    &world,
                ),
                CollBench::AllreduceBandwidth { size, .. } => mpi.allreduce_with(
                    alg,
                    (&src, 0),
                    (&dst, 0),
                    size / 8,
                    pami::CollOp::Sum,
                    pami::DataType::Float64,
                    &world,
                ),
                CollBench::Broadcast { size, .. } => {
                    mpi.bcast_with(alg, &src, 0, size, 0, &world)
                }
                CollBench::RectBroadcast { size } => mpi.bcast_rect(&src, 0, size, 0, &world),
            }
        }
        let elapsed = start.elapsed() / rounds as u32;
        if world.rank() == 0 {
            *result2.lock() = elapsed;
        }
        mpi.barrier(&world);
    });
    let out = *result.lock();
    out
}

// ---------------------------------------------------------------------------
// telemetry.json parsing (pamistat diff / CI gates)
// ---------------------------------------------------------------------------

/// A parsed `telemetry.json` report (the output of
/// `bgq_upc::Snapshot::report_json`). The format is line-oriented and
/// produced by this workspace only, so the parser is deliberately small:
/// no external JSON dependency.
pub mod report {
    /// Histogram summary row as serialized into `telemetry.json`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct Hist {
        pub count: u64,
        pub sum: u64,
        pub p50: u64,
        pub p99: u64,
        pub max: u64,
    }

    /// Parsed report: counters and histogram summaries, in file order.
    #[derive(Debug, Clone, Default)]
    pub struct Report {
        pub counters: Vec<(String, u64)>,
        pub histograms: Vec<(String, Hist)>,
    }

    impl Report {
        /// Counter value by exact name (0 if absent).
        pub fn counter(&self, name: &str) -> u64 {
            self.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        }

        /// Histogram summary by exact name.
        pub fn histogram(&self, name: &str) -> Option<Hist> {
            self.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| *h)
        }
    }

    fn quoted_name(line: &str) -> Option<&str> {
        let start = line.find('"')? + 1;
        let end = start + line[start..].find('"')?;
        Some(&line[start..end])
    }

    fn field_u64(line: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\": ");
        let Some(pos) = line.find(&pat) else { return 0 };
        line[pos + pat.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap_or(0)
    }

    /// Parse a `telemetry.json` string. Lines that do not look like
    /// entries (braces, section headers) are skipped, so the parser is
    /// robust to the exact indentation the reporter emits.
    pub fn parse(text: &str) -> Report {
        #[derive(PartialEq)]
        enum Section {
            None,
            Counters,
            Histograms,
        }
        let mut section = Section::None;
        let mut out = Report::default();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("\"counters\"") {
                section = Section::Counters;
                continue;
            }
            if t.starts_with("\"histograms\"") {
                section = Section::Histograms;
                continue;
            }
            let Some(name) = quoted_name(t) else { continue };
            match section {
                Section::Counters => {
                    let Some(colon) = t.find(':') else { continue };
                    let value: String = t[colon + 1..]
                        .trim()
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    if let Ok(v) = value.parse() {
                        out.counters.push((name.to_string(), v));
                    }
                }
                Section::Histograms => {
                    out.histograms.push((
                        name.to_string(),
                        Hist {
                            count: field_u64(t, "count"),
                            sum: field_u64(t, "sum"),
                            p50: field_u64(t, "p50"),
                            p99: field_u64(t, "p99"),
                            max: field_u64(t, "max"),
                        },
                    ));
                }
                Section::None => {}
            }
        }
        out
    }
}

/// Functional barrier timing with an explicit inter-node mechanism (the
/// GI-vs-collective-network ablation).
pub fn measure_barrier_alg(
    nodes: usize,
    rounds: usize,
    alg: pami::coll::BarrierAlg,
) -> Duration {
    use pami::{Client, Geometry, Topology};
    let machine = Machine::with_nodes(nodes).build();
    let result = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
    let r2 = Arc::clone(&result);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "bar", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = Geometry::create(ctx, 1, Topology::world(env.machine.num_tasks() as u32));
        geom.optimize().expect("world rectangular");
        pami::coll::barrier(&geom, ctx);
        let start = Instant::now();
        for _ in 0..rounds {
            pami::coll::barrier_with(&geom, ctx, alg);
        }
        if env.task == 0 {
            *r2.lock() = start.elapsed() / rounds as u32;
        }
        pami::coll::barrier(&geom, ctx);
    });
    let out = *result.lock();
    out
}

// ---------------------------------------------------------------------------
// Chaos harness: message rate over a fault-injected (or clean-but-reliable)
// fabric, plus the RAS history the run produced.

/// What one chaos-rate run measured.
pub struct ChaosStats {
    /// Messages per second of wall time.
    pub rate: f64,
    /// `ras.retransmits` after the run (0 when telemetry is compiled out).
    pub retransmits: u64,
    /// `ras.sack_retransmits` after the run — losses recovered by SACK
    /// fast retransmit without waiting out an RTO.
    pub sack_retransmits: u64,
    /// `ras.crc_errors` after the run.
    pub crc_errors: u64,
    /// `mu.packets_dropped` summed over both nodes.
    pub packets_dropped: u64,
}

/// Single-context flood 0 → 1 (8-byte messages, receives handled by a
/// counting dispatch) over a machine with an optional [`pami::FaultPlan`]
/// installed. With `None` the fabric runs the bare fast path; with a clean
/// plan (`FaultPlan::new()`, all rates zero) every packet still pays CRC
/// stamping, sequence numbers and ack bookkeeping — the delta between those
/// two is the reliability layer's fair-weather cost. With non-zero rates
/// the run additionally exercises retransmission, and the returned RAS
/// counters record how hostile the plan actually was.
///
/// `force_eager` pins the flood to the eager protocol (a zero short
/// crossover). The chaos *gate* arms use it so the clean-plan budget keeps
/// comparing the machinery it was calibrated against — an 8-byte send
/// otherwise rides the short tier, whose lossless baseline is so lean that
/// a fixed percentage budget stops meaning "the reliability layer is
/// cheap" and starts meaning "CRC arithmetic is free", which it is not.
/// The short tier's own clean-plan cost is reported (ungated) alongside.
pub fn measure_chaos_rate(
    plan: Option<pami::FaultPlan>,
    msgs: usize,
    force_eager: bool,
) -> ChaosStats {
    let mut builder = Machine::with_nodes(2);
    if force_eager {
        builder = builder.protocol_policy(Arc::new(StaticPolicy::with_short(0, 4096)));
    }
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let machine = builder.build();
    let sender = Client::create(&machine, 0, "chaos", 1);
    let receiver = Client::create(&machine, 1, "chaos", 1);
    let got = Arc::new(AtomicU64::new(0));
    {
        let got = Arc::clone(&got);
        receiver.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                got.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    let start = Instant::now();
    for i in 0..msgs {
        sender
            .context(0)
            .send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: 1,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[0u8; 8])),
                local_done: None,
            })
            .unwrap();
        if i % 16 == 0 {
            sender.context(0).advance();
            receiver.context(0).advance();
        }
    }
    while got.load(Ordering::Relaxed) < msgs as u64 {
        sender.context(0).advance();
        receiver.context(0).advance();
    }
    let rate = msgs as f64 / start.elapsed().as_secs_f64();
    let ras = machine.fabric().ras_counters();
    ChaosStats {
        rate,
        retransmits: ras.retransmits.value(),
        sack_retransmits: ras.sack_retransmits.value(),
        crc_errors: ras.crc_errors.value(),
        packets_dropped: machine.fabric().counters(0).packets_dropped.value()
            + machine.fabric().counters(1).packets_dropped.value(),
    }
}

/// What the kill-a-node failover drill measured.
pub struct FailoverStats {
    /// Messages delivered at the primary before its node was cut off.
    pub pre_kill: u64,
    /// Messages drained to the standby after the kill.
    pub drained: u64,
    /// `Unreachable` delivery faults the sender absorbed while the
    /// failover was firing (each one is a resend, not a loss).
    pub unreachable_faults: u64,
    /// Messages never delivered anywhere. The failover contract is 0.
    pub lost: u64,
    /// Whether the persistent channel renegotiated onto the standby and
    /// replayed the step that died with the primary.
    pub channel_replayed: bool,
    /// Wall-clock seconds for the whole drill.
    pub secs: f64,
}

/// Kill-a-node failover drill: flood task 1, cut node 1 off mid-stream,
/// and verify traffic drains to the registered standby (task 2) with zero
/// lost messages.
///
/// Three nodes, one task each. Task 0 sends `msgs` 64-byte messages one at
/// a time (each with a completion counter, so an `Unreachable` fault is
/// observed per message and answered with a resend). Halfway through, node
/// 1 loses every link — its own plus the last hop of each inbound route.
/// The first post-kill send dies `Unreachable`; the RAS observer fires the
/// machine-level failover and the resend lands on the standby. A
/// persistent channel rides along: one step delivered to the primary
/// pre-kill, then a post into the dead channel (which must fail), a
/// `renegotiate()` that follows the failover, and a replay the standby
/// must receive.
///
/// Returns counts instead of asserting so the chaos bin can gate on them
/// and record the numbers in `BENCH_chaos.json`.
///
/// `plan` overrides the fault plan: `None` is the gated drill (a clean
/// plan — reliability on, no injected loss), `Some` lets the nightly soak
/// run the same kill-and-drain scenario under a seeded lossy plan, where
/// the failover must fire *while* retransmission is already absorbing
/// drops and corruption.
pub fn measure_failover_drain(msgs: usize, plan: Option<pami::FaultPlan>) -> FailoverStats {
    use pami::{Counter, DeliveryFault, FaultPlan};

    const DISPATCH: u16 = 9;
    const SLOT: usize = 32;
    let pre = (msgs / 2).max(1) as u64;
    let post = (msgs as u64 - pre).max(1);
    let shape = bgq_torus::TorusShape::for_nodes(3);
    // A clean plan (no rates) turns the reliability layer on, which is
    // what makes links killable and Unreachable faults reportable.
    let plan = plan.unwrap_or_else(|| FaultPlan::new().seed(4040));
    let machine = Machine::builder(shape).fault_plan(plan).build();
    machine.register_standby(1, 2);
    let arrived1 = Arc::new(AtomicU64::new(0));
    let arrived2 = Arc::new(AtomicU64::new(0));
    let faults = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let replayed = Arc::new(AtomicU64::new(0));
    // 1: primary consumed the channel step; 2: links are dead (standby may
    // open its channel); 3: sender done, receivers may stop advancing.
    let stage = Arc::new(AtomicU64::new(0));
    let (a1, a2, f2, l2, r2, st) = (
        Arc::clone(&arrived1),
        Arc::clone(&arrived2),
        Arc::clone(&faults),
        Arc::clone(&lost),
        Arc::clone(&replayed),
        Arc::clone(&stage),
    );
    let start = Instant::now();
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "failover", 1);
        let ctx = client.context(0);
        let counted = |cell: &Arc<AtomicU64>| {
            let cell = Arc::clone(cell);
            let f: pami::context::DispatchFn = Arc::new(move |_: &Context, _, _| {
                cell.fetch_add(1, Ordering::SeqCst);
                Recv::Done
            });
            f
        };
        match env.task {
            1 => ctx.set_dispatch(DISPATCH, counted(&a1)),
            2 => ctx.set_dispatch(DISPATCH, counted(&a2)),
            _ => {}
        }
        env.machine.task_barrier();
        let send_one = || {
            let done = Counter::new();
            done.add_expected(64);
            ctx.send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: DISPATCH,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[0u8; 64])),
                local_done: Some(done.clone()),
            })
            .unwrap();
            ctx.advance_until(|| done.is_complete());
            done
        };
        match env.task {
            0 => {
                let mut ch = ctx.channel(Endpoint::of_task(1), SLOT).unwrap();
                for _ in 0..pre {
                    if !send_one().is_ok() {
                        l2.fetch_add(1, Ordering::SeqCst);
                    }
                }
                ch.post(&[0xA0; SLOT]).unwrap();
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 1);
                // Cut node 1 off: its own links plus the last hop of every
                // inbound route.
                let fab = env.machine.fabric();
                for dir in bgq_torus::Dir::all() {
                    fab.kill_link(1, dir);
                }
                let c1 = shape.coords_of(1);
                fab.kill_link(0, bgq_torus::det_route(shape, shape.coords_of(0), c1)[0]);
                fab.kill_link(2, bgq_torus::det_route(shape, shape.coords_of(2), c1)[0]);
                // Drain the rest, resending on fault; the retry bound
                // converts a failover that never fires into lost counts
                // instead of a hang.
                for _ in 0..post {
                    let mut delivered = false;
                    for _ in 0..8 {
                        let done = send_one();
                        if done.is_ok() {
                            delivered = true;
                            break;
                        }
                        if done.fault() == Some(DeliveryFault::Unreachable) {
                            f2.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    if !delivered {
                        l2.fetch_add(1, Ordering::SeqCst);
                    }
                }
                // Channel replay: the post into the dead channel must
                // fail, the renegotiated channel must reach the standby.
                // (If renegotiation itself fails the standby's side hangs
                // in its handshake — the caller bounds the whole drill
                // with a wall clock, so that surfaces as a failure, not a
                // wedged bench.)
                let dead_post_failed = ch.post(&[0xA1; SLOT]).is_err();
                st.store(2, Ordering::SeqCst);
                let renegotiated = ch.renegotiate().is_ok() && ch.peer().task == 2;
                if renegotiated {
                    ch.post(&[0xA1; SLOT]).unwrap();
                    if dead_post_failed {
                        r2.fetch_add(1, Ordering::SeqCst);
                    }
                }
                st.store(3, Ordering::SeqCst);
            }
            1 => {
                let mut ch = ctx.channel(Endpoint::of_task(0), SLOT).unwrap();
                let mut buf = [0u8; SLOT];
                ch.wait(&mut buf).unwrap();
                st.store(1, Ordering::SeqCst);
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 3);
            }
            2 => {
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 2);
                let mut ch = ctx.channel(Endpoint::of_task(0), SLOT).unwrap();
                let mut buf = [0u8; SLOT];
                if ch.wait(&mut buf).is_ok() && buf == [0xA1; SLOT] {
                    r2.fetch_add(1, Ordering::SeqCst);
                }
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 3);
            }
            _ => unreachable!(),
        }
    });
    let delivered1 = arrived1.load(Ordering::SeqCst);
    let delivered2 = arrived2.load(Ordering::SeqCst);
    FailoverStats {
        pre_kill: delivered1,
        drained: delivered2,
        unreachable_faults: faults.load(Ordering::SeqCst),
        lost: lost.load(Ordering::SeqCst) + (pre + post).saturating_sub(delivered1 + delivered2),
        // Both halves must agree: the sender saw the dead post fail and
        // renegotiated onto the standby, and the standby received the
        // replayed step.
        channel_replayed: replayed.load(Ordering::SeqCst) == 2,
        secs: start.elapsed().as_secs_f64(),
    }
}
