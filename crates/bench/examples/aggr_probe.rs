//! Scratch A/B decomposition driver for the aggregation arm — used with
//! `gprofng` and manual timing to attribute where the aggregated send path
//! spends its time relative to the direct short tier.
//!
//! Arms:
//!   on / off    — the real `measure_aggr_rate` arms
//!   on1 / off1  — same loop pinned to a single destination
//!   base        — the driver loop with no send at all (LCG + slice +
//!                 advance cadence over idle contexts): the shared cost C
//!
//! Usage: `aggr_probe <arm> [msgs]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pami::{Client, Context, Endpoint, Machine, PayloadSource, Recv, SendArgs};

fn run(arm: &str, msgs: usize) -> f64 {
    const NODES: usize = 8;
    let aggregated = arm.starts_with("on");
    let single = arm.ends_with('1');
    let base = arm == "base";
    let mut builder = Machine::with_nodes(NODES);
    if aggregated {
        let mut cfg = pami::AggrConfig::default();
        if arm == "on256" {
            cfg.max_frame = 256; // halve the batch: the rate delta is the per-frame cost
        }
        if let Some(mf) = std::env::var("AGGR_MAX_FRAME").ok().and_then(|s| s.parse().ok()) {
            cfg.max_frame = mf;
        }
        if let Some(age) = std::env::var("AGGR_AGE_US").ok().and_then(|s| s.parse().ok()) {
            cfg.age_us = age;
        }
        builder = builder.aggregation(cfg);
    }
    let machine = builder.build();
    let sender = Client::create(&machine, 0, "aggr", 1);
    let receivers: Vec<_> =
        (1..NODES as u32).map(|t| Client::create(&machine, t, "aggr", 1)).collect();
    let got = Arc::new(AtomicU64::new(0));
    for r in &receivers {
        let got = Arc::clone(&got);
        r.context(0).set_dispatch(
            1,
            Arc::new(move |_: &Context, _msg, _first| {
                got.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    let blob = bytes::Bytes::from(vec![0u8; 64]);
    let mut lcg: u64 = 0x9E3779B97F4A7C15;
    let ctx = sender.context(0);
    let start = Instant::now();
    let mut sunk = 0u64;
    for i in 0..msgs {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dest = if single { 1 } else { 1 + ((lcg >> 33) % (NODES as u64 - 1)) as u32 };
        let len = 16 + ((lcg >> 20) % 49) as usize;
        if base {
            sunk += blob.slice(..len).len() as u64 + dest as u64;
        } else {
            ctx.send(SendArgs {
                dest: Endpoint::of_task(dest),
                dispatch: 1,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(blob.slice(..len)),
                local_done: None,
            })
            .unwrap();
        }
        if i % 16 == 0 {
            ctx.advance();
            for r in &receivers {
                r.context(0).advance();
            }
        }
    }
    if !base {
        ctx.flush_aggr();
        while got.load(Ordering::Relaxed) < msgs as u64 {
            ctx.advance();
            for r in &receivers {
                r.context(0).advance();
            }
        }
    }
    std::hint::black_box(sunk);
    let rate = msgs as f64 / start.elapsed().as_secs_f64();
    let snap = machine.telemetry().snapshot();
    println!(
        "arm={} msgs={} rate={:.0} ns/msg={:.1} frames={} batched={} fill={} age={}",
        arm,
        msgs,
        rate,
        1e9 / rate,
        snap.counter("aggr.frames"),
        snap.counter("aggr.batched_msgs"),
        snap.counter("aggr.flush_fill"),
        snap.counter("aggr.flush_age"),
    );
    rate
}

fn main() {
    let mut args = std::env::args().skip(1);
    let arm = args.next().unwrap_or_else(|| "on".to_string());
    let msgs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400_000);
    if arm == "all" {
        for a in ["base", "off", "on", "off1", "on1"] {
            run(a, msgs);
        }
    } else {
        run(&arm, msgs);
    }
}
