//! Figure 10: 10-color rectangle broadcast (functional).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pami_bench::{measure_collective, CollBench};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_rect_bcast");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    for size in [200 * 1024usize, 1024 * 1024] {
        for nodes in [4usize, 8] {
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_function(format!("rect_bcast_{}KB_{nodes}nodes", size / 1024), |b| {
                b.iter_custom(|n| {
                    measure_collective(nodes, 1, n.max(3) as usize, CollBench::RectBroadcast { size })
                        * n as u32
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
