//! Figure 8: MPI_Allreduce throughput vs message size (functional).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pami_bench::{measure_collective, CollBench};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_allreduce_bw");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    for size in [64 * 1024usize, 1024 * 1024] {
        for ppn in [1usize, 2] {
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_function(format!("allreduce_{}KB_ppn{ppn}", size / 1024), |b| {
                b.iter_custom(|n| {
                    measure_collective(
                        2,
                        ppn,
                        n.max(3) as usize,
                        CollBench::AllreduceBandwidth { size, hw: true },
                    ) * n as u32
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
