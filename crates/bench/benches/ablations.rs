//! Ablations of the design choices DESIGN.md calls out.

use std::collections::VecDeque;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pami_bench::{measure_collective, CollBench};

/// Lockless bounded-increment work queue vs a mutex-guarded deque, under
/// multi-producer contention — the paper's reason for the L2 queue design.
fn queue_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_workqueue");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    const PRODUCERS: usize = 4;
    const PER: usize = 2000;
    g.throughput(Throughput::Elements((PRODUCERS * PER) as u64));
    g.bench_function("lockless_l2_queue_mpsc", |b| {
        b.iter(|| {
            let q: Arc<bgq_hw::WorkQueue<u64>> = Arc::new(bgq_hw::WorkQueue::with_capacity(256));
            std::thread::scope(|s| {
                for p in 0..PRODUCERS {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        for i in 0..PER {
                            q.push((p * PER + i) as u64);
                        }
                    });
                }
                let mut got = 0;
                while got < PRODUCERS * PER {
                    if q.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        })
    });
    g.bench_function("mutex_deque_mpsc", |b| {
        b.iter(|| {
            let q: Arc<parking_lot::Mutex<VecDeque<u64>>> =
                Arc::new(parking_lot::Mutex::new(VecDeque::new()));
            std::thread::scope(|s| {
                for p in 0..PRODUCERS {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        for i in 0..PER {
                            q.lock().push_back((p * PER + i) as u64);
                        }
                    });
                }
                let mut got = 0;
                while got < PRODUCERS * PER {
                    if q.lock().pop_front().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        })
    });
    g.finish();
}

/// Shared vs thread-private (sharded) request pools under contention.
fn request_pool_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_request_pools");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    const THREADS: usize = 4;
    const PER: usize = 1000;
    g.throughput(Throughput::Elements((THREADS * PER) as u64));
    for (name, sharded) in [("shared_pool", false), ("thread_private_pools", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let alloc = Arc::new(if sharded {
                    pami_mpi::request::RequestAllocator::sharded(THREADS * 2)
                } else {
                    pami_mpi::request::RequestAllocator::shared()
                });
                std::thread::scope(|s| {
                    for _ in 0..THREADS {
                        let alloc = Arc::clone(&alloc);
                        s.spawn(move || {
                            for _ in 0..PER {
                                let r = alloc.insert(pami_mpi::request::RequestInner::with_flag());
                                criterion::black_box(alloc.resolve(r));
                                alloc.release(r);
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

/// Hardware (classroute) vs software (binomial) collectives — what
/// MPIX_Comm_optimize buys.
fn collective_path_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hw_vs_sw_collectives");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    const SIZE: usize = 256 * 1024;
    g.throughput(Throughput::Bytes(SIZE as u64));
    for (name, hw) in [("hw_classroute", true), ("sw_binomial", false)] {
        g.bench_function(format!("allreduce_256KB_8nodes_{name}"), |b| {
            b.iter_custom(|n| {
                measure_collective(
                    8,
                    1,
                    n.max(2) as usize,
                    CollBench::AllreduceBandwidth { size: SIZE, hw },
                ) * n as u32
            })
        });
    }
    g.finish();
}

/// GI-network barrier vs a zero-payload collective-network barrier — why
/// the paper routes MPI_Barrier over the global-interrupt wires.
fn barrier_mechanism_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_barrier_mechanism");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, alg) in [
        ("gi_network", pami::coll::BarrierAlg::GlobalInterrupt),
        ("collective_network", pami::coll::BarrierAlg::CollNet),
    ] {
        g.bench_function(format!("barrier_8nodes_{name}"), |b| {
            b.iter_custom(|n| {
                pami_bench::measure_barrier_alg(8, n.max(10) as usize, alg) * n as u32
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    queue_ablation,
    request_pool_ablation,
    collective_path_ablation,
    barrier_mechanism_ablation
);
criterion_main!(benches);
