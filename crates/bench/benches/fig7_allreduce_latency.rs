//! Figure 7: single-double MPI_Allreduce latency (functional).

use criterion::{criterion_group, criterion_main, Criterion};
use pami_bench::{measure_collective, CollBench};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_allreduce_latency");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (nodes, ppn) in [(2usize, 1usize), (4, 1), (8, 1), (4, 2)] {
        g.bench_function(format!("allreduce_1double_{nodes}nodes_ppn{ppn}"), |b| {
            b.iter_custom(|n| {
                measure_collective(nodes, ppn, n.max(10) as usize, CollBench::AllreduceLatency { hw: true })
                    * n as u32
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
