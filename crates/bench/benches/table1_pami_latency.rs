//! Table 1: PAMI half-round-trip latency (functional stack).

use criterion::{criterion_group, criterion_main, Criterion};
use pami_bench::measure_pami_half_rtt;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_pami_latency");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("send_immediate_0B_half_rtt", |b| {
        b.iter_custom(|n| measure_pami_half_rtt(true, 0, n.max(50) as u32) * n as u32)
    });
    g.bench_function("send_0B_half_rtt", |b| {
        b.iter_custom(|n| measure_pami_half_rtt(false, 0, n.max(50) as u32) * n as u32)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
