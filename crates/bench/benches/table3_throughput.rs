//! Table 3: nearest-neighbor throughput, eager vs rendezvous.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pami_bench::measure_neighbor_throughput;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_neighbor_throughput");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    const SIZE: usize = 1 << 20;
    for k in [1usize, 2] {
        g.throughput(Throughput::Bytes((2 * k * SIZE) as u64));
        for (proto, eager) in [("eager", true), ("rendezvous", false)] {
            g.bench_function(format!("{k}_neighbors_{proto}"), |b| {
                b.iter_custom(|n| {
                    let bw = measure_neighbor_throughput(k, SIZE, eager, n.max(2) as usize);
                    std::time::Duration::from_secs_f64((2 * k * SIZE) as f64 / bw * n as f64)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
