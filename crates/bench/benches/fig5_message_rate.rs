//! Figure 5: message rate (PAMI vs MPI, named vs wildcard receives).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pami_bench::{measure_message_rate, MeasuredRateSeries};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_message_rate");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.throughput(Throughput::Elements(1));
    for ppn in [1usize, 2] {
        for (name, series) in [
            ("pami", MeasuredRateSeries::Pami),
            ("mpi_named", MeasuredRateSeries::MpiNamed),
            ("mpi_wildcard", MeasuredRateSeries::MpiWildcard),
        ] {
            g.bench_function(format!("{name}_ppn{ppn}"), |b| {
                b.iter_custom(|n| {
                    let msgs = (n as usize).clamp(200, 5000);
                    let rate = measure_message_rate(series, ppn, msgs);
                    std::time::Duration::from_secs_f64(n as f64 / rate)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
