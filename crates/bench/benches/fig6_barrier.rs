//! Figure 6: MPI_Barrier latency (functional, host-scaled node counts).

use criterion::{criterion_group, criterion_main, Criterion};
use pami_bench::{measure_collective, CollBench};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_barrier");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (nodes, ppn) in [(2usize, 1usize), (4, 1), (8, 1), (4, 2)] {
        g.bench_function(format!("barrier_{nodes}nodes_ppn{ppn}"), |b| {
            b.iter_custom(|n| {
                measure_collective(nodes, ppn, n.max(10) as usize, CollBench::Barrier) * n as u32
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
