//! Microbenchmarks of the BG/Q substrate primitives PAMI is built on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));

    // L2 atomic operations.
    let counter = bgq_hw::L2Counter::new(0);
    g.bench_function("l2_load_increment", |b| b.iter(|| counter.load_increment()));
    let bounded = bgq_hw::BoundedCounter::new(0, u64::MAX);
    g.bench_function("l2_bounded_increment", |b| b.iter(|| bounded.bounded_increment()));

    // Ticket mutex vs parking_lot.
    let ticket = bgq_hw::L2TicketMutex::new();
    g.bench_function("l2_ticket_mutex_lock_unlock", |b| b.iter(|| drop(ticket.lock())));
    let pl = parking_lot::Mutex::new(());
    g.bench_function("parking_lot_mutex_lock_unlock", |b| b.iter(|| drop(pl.lock())));

    // The lockless work queue, uncontended push/pop.
    let q: bgq_hw::WorkQueue<u64> = bgq_hw::WorkQueue::with_capacity(1024);
    g.throughput(Throughput::Elements(1));
    g.bench_function("workqueue_push_pop", |b| {
        b.iter(|| {
            q.push(7);
            q.pop().unwrap()
        })
    });

    // Wakeup region touch with no watchers (the common fast path).
    let unit = bgq_hw::WakeupUnit::new();
    let region = unit.region();
    g.bench_function("wakeup_touch_unwatched", |b| b.iter(|| region.touch()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
