//! Table 2: MPI half-round-trip latency across library configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use pami_bench::{measure_mpi_half_rtt, Table2Row};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_mpi_latency");
    g.warm_up_time(std::time::Duration::from_millis(600));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    let rows = [
        ("classic_single", Table2Row { thread_optimized: false, thread_multiple: false, commthreads: false }),
        ("classic_multiple", Table2Row { thread_optimized: false, thread_multiple: true, commthreads: false }),
        ("threadopt_multiple", Table2Row { thread_optimized: true, thread_multiple: true, commthreads: false }),
        ("threadopt_multiple_commthreads", Table2Row { thread_optimized: true, thread_multiple: true, commthreads: true }),
    ];
    for (name, row) in rows {
        g.bench_function(name, |b| {
            b.iter_custom(|n| measure_mpi_half_rtt(row, n.max(20) as u32) * n as u32)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
