//! Property-based tests of torus geometry, routing, and spanning trees.

use bgq_torus::packet::{packets_for, wire_bytes_for, HEADER_BYTES, MAX_PAYLOAD_BYTES};
use bgq_torus::route::{det_route, hop_distance, link_neighbors, minimal_path_count, walk};
use bgq_torus::trees::{SpanningTree, TreeKind, NUM_COLORS};
use bgq_torus::{Coords, Rectangle, TorusShape, ALL_DIMS};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = TorusShape> {
    (1u16..6, 1u16..6, 1u16..4, 1u16..4, 1u16..3)
        .prop_map(|(a, b, c, d, e)| TorusShape::new([a, b, c, d, e]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// node_index and coords_of are inverse bijections.
    #[test]
    fn rank_coordinate_bijection(shape in arb_shape()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..shape.num_nodes() {
            let c = shape.coords_of(i);
            prop_assert!(shape.contains(c));
            prop_assert_eq!(shape.node_index(c), i);
            prop_assert!(seen.insert(c));
        }
    }

    /// Deterministic routes terminate at the destination with minimal
    /// length and dimension-ordered hops.
    #[test]
    fn det_route_is_minimal_and_ordered(shape in arb_shape(), seed in any::<u64>()) {
        let n = shape.num_nodes();
        let src = shape.coords_of((seed % n as u64) as usize);
        let dst = shape.coords_of(((seed >> 16) % n as u64) as usize);
        let route = det_route(shape, src, dst);
        prop_assert_eq!(walk(shape, src, &route), dst);
        prop_assert_eq!(route.len() as u32, hop_distance(shape, src, dst));
        let idxs: Vec<usize> = route.iter().map(|d| d.dim.index()).collect();
        prop_assert!(idxs.windows(2).all(|w| w[0] <= w[1]));
        // Distance is symmetric and within the diameter.
        prop_assert_eq!(hop_distance(shape, src, dst), hop_distance(shape, dst, src));
        prop_assert!(hop_distance(shape, src, dst) <= shape.diameter());
        prop_assert!(minimal_path_count(shape, src, dst) >= 1);
    }

    /// Link neighbors are all at distance ≤ 1 and cover every torus
    /// direction.
    #[test]
    fn link_neighbors_are_adjacent(shape in arb_shape(), seed in any::<u64>()) {
        let n = shape.num_nodes();
        let src = shape.coords_of((seed % n as u64) as usize);
        let peers = link_neighbors(shape, src);
        prop_assert_eq!(peers.len(), 10);
        for p in peers {
            prop_assert!(hop_distance(shape, src, p) <= 1);
        }
    }

    /// Every rectangle's member indexing is a bijection.
    #[test]
    fn rectangle_member_bijection(shape in arb_shape(), seed in any::<u64>()) {
        let lo = shape.coords_of((seed % shape.num_nodes() as u64) as usize);
        let hi = shape.coords_of(((seed >> 20) % shape.num_nodes() as u64) as usize);
        let (mut l, mut h) = (lo.0, hi.0);
        for d in 0..5 {
            if l[d] > h[d] {
                std::mem::swap(&mut l[d], &mut h[d]);
            }
        }
        let rect = Rectangle::new(Coords(l), Coords(h));
        for (i, c) in rect.iter().enumerate() {
            prop_assert!(rect.contains(c));
            prop_assert_eq!(rect.member_index(c), i);
            prop_assert_eq!(rect.member_coords(i), c);
        }
        let members: Vec<Coords> = rect.iter().collect();
        prop_assert_eq!(Rectangle::exactly_covers(&members), Some(rect));
    }

    /// Every tree kind spans its rectangle: unique root, acyclic parent
    /// chains, single-hop edges.
    #[test]
    fn spanning_trees_span(shape in arb_shape(), color in 0u8..NUM_COLORS, seed in any::<u64>()) {
        let rect = Rectangle::full(shape);
        let root = shape.coords_of((seed % shape.num_nodes() as u64) as usize);
        for kind in [TreeKind::DimOrdered(ALL_DIMS), TreeKind::Colored(color)] {
            let tree = SpanningTree::build(shape, rect, root, kind);
            prop_assert_eq!(tree.num_nodes(), rect.num_nodes());
            let mut reached = 0;
            for c in rect.iter() {
                let mut cur = c;
                let mut hops = 0;
                while let Some(p) = tree.parent_of(cur) {
                    prop_assert_eq!(hop_distance(shape, cur, p), 1);
                    cur = p;
                    hops += 1;
                    prop_assert!(hops <= tree.num_nodes());
                }
                prop_assert_eq!(cur, root);
                reached += 1;
            }
            prop_assert_eq!(reached, rect.num_nodes());
            prop_assert_eq!(tree.bfs_order().len(), rect.num_nodes());
        }
    }

    /// Packetization arithmetic: counts and wire bytes are consistent.
    #[test]
    fn packetization_consistent(len in 0usize..4_000_000) {
        let pkts = packets_for(len);
        prop_assert!(pkts >= 1);
        prop_assert!(pkts * MAX_PAYLOAD_BYTES >= len);
        if len > 0 {
            prop_assert!((pkts - 1) * MAX_PAYLOAD_BYTES < len);
        }
        let wire = wire_bytes_for(len);
        prop_assert!(wire >= len + HEADER_BYTES);
        prop_assert!(wire >= pkts * HEADER_BYTES);
        // Efficiency never exceeds the 512/544 hardware bound.
        if len > 0 {
            let eff = len as f64 / wire as f64;
            prop_assert!(eff <= 512.0 / 544.0 + 1e-12);
        }
    }

    /// Coordinate neighbors: ten applications of reverse directions return
    /// to the start.
    #[test]
    fn neighbor_reverse_round_trip(shape in arb_shape(), seed in any::<u64>()) {
        let src = shape.coords_of((seed % shape.num_nodes() as u64) as usize);
        for dir in bgq_torus::Dir::all() {
            let there = shape.neighbor(src, dir);
            let back = shape.neighbor(there, dir.reverse());
            prop_assert_eq!(back, src);
        }
    }
}
