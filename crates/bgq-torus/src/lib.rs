//! The Blue Gene/Q 5D torus: geometry, routing, packet format, and link
//! constants.
//!
//! BG/Q nodes are connected by a five-dimensional torus whose dimensions are
//! labeled A, B, C, D, E, each link moving 2 GB/s of raw data per direction
//! (1.8 GB/s of application payload once the 32-byte packet header, packet
//! consistency checks, and protocol packets are accounted for). This crate
//! is the pure-math substrate shared by the functional messaging stack
//! (`bgq-mu`, `bgq-collnet`, `pami`) and the timing simulator
//! (`bgq-netsim`):
//!
//! * [`coords`] — dimensions, directed links, coordinates, torus shapes and
//!   the rank ↔ coordinate mapping.
//! * [`rect`] — contiguous rectangular subsets of the machine (the node sets
//!   classroutes can be built over) and axial node ranges.
//! * [`route`] — deterministic dimension-ordered routing (which is what
//!   gives eager messages their MPI-ordering guarantee) and minimal-path hop
//!   counts.
//! * [`packet`] — the 32-byte-header / 512-byte-payload packet format and
//!   per-message packetization arithmetic.
//! * [`trees`] — spanning trees over rectangles: the dimension-ordered tree
//!   used by classroutes and the ten rotated ("10-color") trees used by the
//!   rectangle broadcast of Figure 10.

pub mod coords;
pub mod packet;
pub mod rect;
pub mod route;
pub mod trees;

pub use coords::{Coords, Dim, Dir, TorusShape, ALL_DIMS, NUM_DIMS, NUM_DIRS};
pub use packet::{PacketHeader, Routing, HEADER_BYTES, MAX_PAYLOAD_BYTES, PAYLOAD_GRANULE};
pub use rect::Rectangle;
pub use route::{det_route, first_hop_class, healthy_route, hop_distance, next_hop, LinkHealth};
pub use trees::{SpanningTree, TreeKind};

/// Raw per-direction link bandwidth, bytes/second (2 GB/s).
pub const LINK_RAW_BW: f64 = 2.0e9;

/// Achievable application-payload bandwidth per link direction after header
/// and protocol overheads (1.8 GB/s — 90% of raw).
pub const LINK_PAYLOAD_BW: f64 = 1.8e9;

/// Number of torus links out of a node (5 dimensions × 2 directions).
pub const LINKS_PER_NODE: usize = 10;
