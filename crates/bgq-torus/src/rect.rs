//! Rectangular node subsets.
//!
//! The BG/Q collective network accelerates operations on `MPI_COMM_WORLD`
//! *and* on sub-communicators whose nodes form contiguous rectangles (lines,
//! planes, cubes, …) — classroutes can only be programmed over such sets.
//! [`Rectangle`] is that set: an inclusive lo/hi corner box inside a torus
//! shape.

use crate::coords::{Coords, Dim, TorusShape, ALL_DIMS, NUM_DIMS};

/// A contiguous rectangular subset of the torus, inclusive of both corners.
///
/// Rectangles never wrap around the torus edge: classroute link programming
/// in this model requires `lo[d] <= hi[d]` in every dimension. (Hardware
/// classroutes have the same practical restriction for user partitions.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rectangle {
    /// Lower corner (inclusive).
    pub lo: Coords,
    /// Upper corner (inclusive).
    pub hi: Coords,
}

impl Rectangle {
    /// Build a rectangle, validating corner ordering.
    ///
    /// # Panics
    /// If any `lo[d] > hi[d]`.
    pub fn new(lo: Coords, hi: Coords) -> Self {
        for d in ALL_DIMS {
            assert!(
                lo.get(d) <= hi.get(d),
                "rectangle corners out of order in {d}: {} > {}",
                lo.get(d),
                hi.get(d)
            );
        }
        Rectangle { lo, hi }
    }

    /// The rectangle covering an entire torus shape.
    pub fn full(shape: TorusShape) -> Self {
        let mut hi = [0u16; NUM_DIMS];
        for (d, h) in hi.iter_mut().enumerate() {
            *h = shape.0[d] - 1;
        }
        Rectangle { lo: Coords([0; NUM_DIMS]), hi: Coords(hi) }
    }

    /// Extent (node count) along `dim`.
    pub fn extent(&self, dim: Dim) -> u16 {
        self.hi.get(dim) - self.lo.get(dim) + 1
    }

    /// Total nodes in the rectangle.
    pub fn num_nodes(&self) -> usize {
        ALL_DIMS.iter().map(|&d| self.extent(d) as usize).product()
    }

    /// Whether `c` lies inside.
    pub fn contains(&self, c: Coords) -> bool {
        ALL_DIMS
            .iter()
            .all(|&d| self.lo.get(d) <= c.get(d) && c.get(d) <= self.hi.get(d))
    }

    /// Number of dimensions with extent > 1 (0 = single node, 1 = line,
    /// 2 = plane, 3 = cube, …).
    pub fn dimensionality(&self) -> usize {
        ALL_DIMS.iter().filter(|&&d| self.extent(d) > 1).count()
    }

    /// Iterate the member coordinates in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Coords> + '_ {
        let lo = self.lo;
        let hi = self.hi;
        let counts: Vec<usize> = ALL_DIMS.iter().map(|&d| self.extent(d) as usize).collect();
        let total = self.num_nodes();
        (0..total).map(move |mut i| {
            let mut c = [0u16; NUM_DIMS];
            for d in (0..NUM_DIMS).rev() {
                let e = counts[d];
                c[d] = lo.0[d] + (i % e) as u16;
                i /= e;
            }
            debug_assert!(c.iter().zip(hi.0.iter()).all(|(&x, &h)| x <= h));
            Coords(c)
        })
    }

    /// The member index (0..num_nodes) of `c` within the rectangle, in the
    /// same lexicographic order as [`Rectangle::iter`].
    ///
    /// # Panics
    /// If `c` is outside the rectangle.
    pub fn member_index(&self, c: Coords) -> usize {
        assert!(self.contains(c), "coords {c} outside rectangle");
        let mut idx = 0usize;
        for d in 0..NUM_DIMS {
            let e = self.extent(Dim::from_index(d)) as usize;
            idx = idx * e + (c.0[d] - self.lo.0[d]) as usize;
        }
        idx
    }

    /// Inverse of [`Rectangle::member_index`].
    pub fn member_coords(&self, index: usize) -> Coords {
        assert!(index < self.num_nodes(), "member index out of range");
        let mut rem = index;
        let mut c = [0u16; NUM_DIMS];
        for d in (0..NUM_DIMS).rev() {
            let e = self.extent(Dim::from_index(d)) as usize;
            c[d] = self.lo.0[d] + (rem % e) as u16;
            rem /= e;
        }
        Coords(c)
    }

    /// The smallest rectangle containing every coordinate in `coords`;
    /// `None` for an empty slice.
    pub fn bounding(coords: &[Coords]) -> Option<Rectangle> {
        let first = *coords.first()?;
        let mut lo = first.0;
        let mut hi = first.0;
        for c in &coords[1..] {
            for d in 0..NUM_DIMS {
                lo[d] = lo[d].min(c.0[d]);
                hi[d] = hi[d].max(c.0[d]);
            }
        }
        Some(Rectangle { lo: Coords(lo), hi: Coords(hi) })
    }

    /// Whether `coords` is *exactly* a rectangle (its bounding box contains
    /// no extra nodes). This is the test PAMI applies before trying to give
    /// a communicator a classroute.
    pub fn exactly_covers(coords: &[Coords]) -> Option<Rectangle> {
        let rect = Self::bounding(coords)?;
        if rect.num_nodes() != coords.len() {
            return None;
        }
        // Bounding box of n distinct coords with matching count covers them
        // iff all coords are distinct; verify.
        let mut sorted = coords.to_vec();
        sorted.sort();
        sorted.dedup();
        (sorted.len() == coords.len()).then_some(rect)
    }
}

/// An axial range: the nodes reachable from `origin` walking along one
/// dimension. The paper's "axial topology" stores communicator membership
/// for such sets in O(1) space; this is the geometric object behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxialRange {
    /// Starting coordinate.
    pub origin: Coords,
    /// The dimension the range extends along.
    pub dim: Dim,
    /// Number of nodes in the range (≥ 1), extending in "+".
    pub len: u16,
}

impl AxialRange {
    /// Member coordinates, with wraparound inside `shape`.
    pub fn iter(&self, shape: TorusShape) -> impl Iterator<Item = Coords> + '_ {
        let e = shape.extent(self.dim);
        let origin = self.origin;
        let dim = self.dim;
        (0..self.len).map(move |i| {
            let x = (origin.get(dim) + i) % e;
            origin.with(dim, x)
        })
    }

    /// Whether `c` is a member (inside `shape`).
    pub fn contains(&self, shape: TorusShape, c: Coords) -> bool {
        for d in ALL_DIMS {
            if d != self.dim && c.get(d) != self.origin.get(d) {
                return false;
            }
        }
        let e = shape.extent(self.dim) as i32;
        let delta = (c.get(self.dim) as i32 - self.origin.get(self.dim) as i32).rem_euclid(e);
        (delta as u16) < self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: [u16; 5], hi: [u16; 5]) -> Rectangle {
        Rectangle::new(Coords(lo), Coords(hi))
    }

    #[test]
    fn counts_and_membership() {
        let r = rect([1, 1, 0, 0, 0], [2, 3, 0, 0, 0]);
        assert_eq!(r.num_nodes(), 2 * 3);
        assert!(r.contains(Coords([2, 2, 0, 0, 0])));
        assert!(!r.contains(Coords([0, 2, 0, 0, 0])));
        assert_eq!(r.dimensionality(), 2);
    }

    #[test]
    fn iter_matches_member_index() {
        let r = rect([0, 1, 0, 2, 0], [1, 2, 0, 4, 1]);
        for (i, c) in r.iter().enumerate() {
            assert_eq!(r.member_index(c), i);
            assert_eq!(r.member_coords(i), c);
        }
    }

    #[test]
    fn full_covers_shape() {
        let shape = TorusShape::new([2, 3, 2, 1, 2]);
        let r = Rectangle::full(shape);
        assert_eq!(r.num_nodes(), shape.num_nodes());
        for c in shape.iter() {
            assert!(r.contains(c));
        }
    }

    #[test]
    fn exactly_covers_accepts_rectangles_rejects_irregular() {
        let r = rect([0, 0, 0, 0, 0], [1, 1, 0, 0, 0]);
        let members: Vec<Coords> = r.iter().collect();
        assert_eq!(Rectangle::exactly_covers(&members), Some(r));
        // Remove one node: no longer a rectangle.
        let broken = &members[..3];
        assert_eq!(Rectangle::exactly_covers(broken), None);
        // Duplicate coordinates are not a rectangle either.
        let dup = vec![members[0], members[0], members[1], members[2]];
        assert_eq!(Rectangle::exactly_covers(&dup), None);
    }

    #[test]
    #[should_panic(expected = "corners out of order")]
    fn reversed_corners_panic() {
        rect([2, 0, 0, 0, 0], [1, 0, 0, 0, 0]);
    }

    #[test]
    fn axial_range_wraps() {
        let shape = TorusShape::new([4, 2, 1, 1, 1]);
        let ax = AxialRange {
            origin: Coords([3, 1, 0, 0, 0]),
            dim: Dim::A,
            len: 3,
        };
        let members: Vec<Coords> = ax.iter(shape).collect();
        assert_eq!(
            members,
            vec![
                Coords([3, 1, 0, 0, 0]),
                Coords([0, 1, 0, 0, 0]),
                Coords([1, 1, 0, 0, 0]),
            ]
        );
        for m in &members {
            assert!(ax.contains(shape, *m));
        }
        assert!(!ax.contains(shape, Coords([2, 1, 0, 0, 0])));
        assert!(!ax.contains(shape, Coords([3, 0, 0, 0, 0])));
    }
}
