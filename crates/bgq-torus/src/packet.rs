//! The BG/Q torus packet format.
//!
//! "Each packet has a 32 byte header and up to 512 bytes of payload, in 32B
//! increments" (paper section II.B). The header identifies the destination,
//! the routing mode, and — for memory-FIFO packets — which reception FIFO
//! receives the payload. The messaging-unit crate wraps this with its own
//! per-packet metadata; the timing simulator uses only the arithmetic.

use crate::coords::Coords;

/// Packet header size in bytes.
pub const HEADER_BYTES: usize = 32;

/// Maximum payload bytes per packet.
pub const MAX_PAYLOAD_BYTES: usize = 512;

/// Payload is carried in 32-byte granules.
pub const PAYLOAD_GRANULE: usize = 32;

/// Routing mode carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Routing {
    /// Dimension-ordered; delivery order matches injection order for a
    /// (source, destination) pair. Used by eager data and rendezvous
    /// headers to preserve MPI ordering.
    #[default]
    Deterministic,
    /// Any minimal path; higher bandwidth, unordered. Used by rendezvous
    /// payload.
    Dynamic,
}

/// The torus-level packet header (the modeled subset of the 32 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Source node index within the partition.
    pub src_node: u32,
    /// Destination node index within the partition.
    pub dst_node: u32,
    /// Routing mode.
    pub routing: Routing,
    /// Destination reception FIFO (memory-FIFO packets) — RDMA packets
    /// bypass reception FIFOs and carry `None`.
    pub reception_fifo: Option<u16>,
    /// Payload bytes carried (≤ [`MAX_PAYLOAD_BYTES`], rounded up to
    /// [`PAYLOAD_GRANULE`] on the wire).
    pub payload_bytes: u16,
}

impl PacketHeader {
    /// Bytes this packet occupies on a link: header plus payload rounded up
    /// to the 32-byte granule.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + granules(self.payload_bytes as usize) * PAYLOAD_GRANULE
    }
}

/// Payload granule count for `len` bytes.
pub fn granules(len: usize) -> usize {
    len.div_ceil(PAYLOAD_GRANULE)
}

/// Number of packets needed to move `len` payload bytes (at least one, so a
/// zero-byte message still sends a header-only packet).
pub fn packets_for(len: usize) -> usize {
    len.div_ceil(MAX_PAYLOAD_BYTES).max(1)
}

/// Total wire bytes (headers + granule-rounded payload) for an `len`-byte
/// message — the quantity that divides into raw link bandwidth. The 32/512
/// header-to-payload ratio is what turns 2 GB/s raw into ≈1.8 GB/s payload.
pub fn wire_bytes_for(len: usize) -> usize {
    let full = len / MAX_PAYLOAD_BYTES;
    let tail = len % MAX_PAYLOAD_BYTES;
    let mut total = full * (HEADER_BYTES + MAX_PAYLOAD_BYTES);
    if tail > 0 || full == 0 {
        total += HEADER_BYTES + granules(tail) * PAYLOAD_GRANULE;
    }
    total
}

/// Helper carried by fabric tests: a destination expressed either as node
/// index or coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// Partition-relative node index.
    Index(u32),
    /// Torus coordinates.
    Coords(Coords),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_rounding() {
        assert_eq!(granules(0), 0);
        assert_eq!(granules(1), 1);
        assert_eq!(granules(32), 1);
        assert_eq!(granules(33), 2);
        assert_eq!(granules(512), 16);
    }

    #[test]
    fn packets_for_message_sizes() {
        assert_eq!(packets_for(0), 1, "zero-byte message is one packet");
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(512), 1);
        assert_eq!(packets_for(513), 2);
        assert_eq!(packets_for(1024 * 1024), 2048);
    }

    #[test]
    fn wire_bytes_include_headers() {
        // A full packet: 544 bytes for 512 of payload → 512/544 ≈ 0.94
        // efficiency, consistent with 1.8/2.0 GB/s after other protocol
        // overheads.
        assert_eq!(wire_bytes_for(512), 544);
        assert_eq!(wire_bytes_for(0), 32);
        assert_eq!(wire_bytes_for(1), 64);
        assert_eq!(wire_bytes_for(513), 544 + 64);
    }

    #[test]
    fn header_wire_bytes() {
        let h = PacketHeader {
            src_node: 0,
            dst_node: 1,
            routing: Routing::Deterministic,
            reception_fifo: Some(0),
            payload_bytes: 100,
        };
        assert_eq!(h.wire_bytes(), 32 + 4 * 32);
    }

    #[test]
    fn payload_efficiency_close_to_published_ratio() {
        let eff = 512.0 / wire_bytes_for(512) as f64;
        assert!(eff > 0.90 && eff < 0.95, "efficiency {eff}");
    }
}
