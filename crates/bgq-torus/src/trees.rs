//! Spanning trees over rectangular node sets.
//!
//! Two tree families drive BG/Q collectives:
//!
//! * The **dimension-ordered tree** is the shape a classroute gives the
//!   embedded collective network over a rectangle: packets combine up the
//!   tree to the root and broadcast down it.
//! * The **colored trees** behind the "10-color rectangle broadcast"
//!   (paper Figure 10, algorithm from the CCMI work \[15\]): the root
//!   stripes a broadcast over up to ten spanning trees, each leading with a
//!   different directed link (A+, A−, …, E−), so the aggregate bandwidth
//!   approaches ten links' worth (≈18 GB/s peak).
//!
//! Colored trees rotate the dimension order by the color and, when the
//! rectangle spans a dimension's full torus extent, run *unidirectional*
//! chains with wraparound — the "+" and "−" colors of a dimension then use
//! disjoint directed links along it. (The full edge-disjointness proof of
//! \[15\] involves a finer link schedule; what this reproduction preserves
//! is the tree structure, the striping, and the aggregate-bandwidth
//! property the paper measures.)

use crate::coords::{Coords, Dim, TorusShape, ALL_DIMS, NUM_DIMS};
use crate::rect::Rectangle;

/// Which tree family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Classroute-style tree correcting dimensions in the given order, with
    /// bidirectional chains inside the rectangle.
    DimOrdered([Dim; NUM_DIMS]),
    /// Rectangle-broadcast tree for `color` ∈ 0..10. Color `c` rotates the
    /// dimension order to start at dimension `c % 5`; colors 0–4 run "+"
    /// chains, colors 5–9 run "−" chains (with wraparound where the
    /// rectangle spans the torus).
    Colored(u8),
}

/// Maximum number of colors (directed links out of a node).
pub const NUM_COLORS: u8 = 10;

/// A rooted spanning tree over the members of a [`Rectangle`].
#[derive(Debug, Clone)]
pub struct SpanningTree {
    rect: Rectangle,
    root: Coords,
    /// Parent member-index per member; `None` at the root.
    parents: Vec<Option<u32>>,
    /// Children member-indices per member.
    children: Vec<Vec<u32>>,
    /// Hop depth per member.
    depth: Vec<u16>,
}

impl SpanningTree {
    /// Build a spanning tree of `rect` rooted at `root`.
    ///
    /// `shape` supplies torus extents so full-extent dimensions of colored
    /// trees can wrap.
    ///
    /// # Panics
    /// If `root` is outside `rect`, or a colored tree's color ≥ 10.
    pub fn build(shape: TorusShape, rect: Rectangle, root: Coords, kind: TreeKind) -> Self {
        assert!(rect.contains(root), "tree root {root} outside rectangle");
        let (order, plus) = match kind {
            TreeKind::DimOrdered(order) => (order, true),
            TreeKind::Colored(color) => {
                assert!(color < NUM_COLORS, "color {color} out of range");
                let start = (color % 5) as usize;
                let mut order = [Dim::A; NUM_DIMS];
                for (i, slot) in order.iter_mut().enumerate() {
                    *slot = ALL_DIMS[(start + i) % NUM_DIMS];
                }
                (order, color < 5)
            }
        };
        let wrap = matches!(kind, TreeKind::Colored(_));

        let n = rect.num_nodes();
        let mut parents = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![0u16; n];

        for (idx, c) in rect.iter().enumerate() {
            if c == root {
                continue;
            }
            let parent = Self::parent_coords(shape, rect, root, c, &order, plus, wrap);
            let pidx = rect.member_index(parent) as u32;
            parents[idx] = Some(pidx);
            children[pidx as usize].push(idx as u32);
        }
        // Depths via BFS from the root.
        let root_idx = rect.member_index(root);
        let mut queue = std::collections::VecDeque::from([root_idx as u32]);
        while let Some(i) = queue.pop_front() {
            for &ch in &children[i as usize] {
                depth[ch as usize] = depth[i as usize] + 1;
                queue.push_back(ch);
            }
        }
        SpanningTree { rect, root, parents, children, depth }
    }

    /// The parent of `c`: step back along the *last* (in `order`) dimension
    /// where `c` differs from the root — the inverse of the dimension-
    /// ordered path root → c.
    fn parent_coords(
        shape: TorusShape,
        rect: Rectangle,
        root: Coords,
        c: Coords,
        order: &[Dim; NUM_DIMS],
        plus: bool,
        wrap: bool,
    ) -> Coords {
        let last_diff = order
            .iter()
            .rev()
            .find(|&&d| c.get(d) != root.get(d))
            .copied()
            .expect("non-root node differs somewhere");
        let e = shape.extent(last_diff);
        let full_extent = rect.extent(last_diff) == e;
        let x = c.get(last_diff);
        let r = root.get(last_diff);
        let px = if wrap && full_extent {
            // Unidirectional chain around the ring: with "+" chains the root
            // reaches offset k via k "+"-hops, so the parent sits one step
            // "-" of us (and vice versa).
            if plus {
                (x + e - 1) % e
            } else {
                (x + 1) % e
            }
        } else {
            // Bidirectional chain within the box, stepping toward the root.
            if x > r {
                x - 1
            } else {
                x + 1
            }
        };
        c.with(last_diff, px)
    }

    /// Root coordinates.
    pub fn root(&self) -> Coords {
        self.root
    }

    /// The rectangle this tree spans.
    pub fn rect(&self) -> Rectangle {
        self.rect
    }

    /// Member count.
    pub fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    /// Parent of `c`; `None` at the root.
    pub fn parent_of(&self, c: Coords) -> Option<Coords> {
        self.parents[self.rect.member_index(c)].map(|i| self.rect.member_coords(i as usize))
    }

    /// Children of `c`.
    pub fn children_of(&self, c: Coords) -> Vec<Coords> {
        self.children[self.rect.member_index(c)]
            .iter()
            .map(|&i| self.rect.member_coords(i as usize))
            .collect()
    }

    /// Hop depth of `c` below the root.
    pub fn depth_of(&self, c: Coords) -> u16 {
        self.depth[self.rect.member_index(c)]
    }

    /// Deepest leaf depth — the latency-determining height of the tree.
    pub fn max_depth(&self) -> u16 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Maximum children under one node (fan-out determines combine cost).
    pub fn max_fanout(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Members in BFS (root-first) order — the delivery order of a
    /// down-tree broadcast.
    pub fn bfs_order(&self) -> Vec<Coords> {
        let mut out = Vec::with_capacity(self.num_nodes());
        let mut queue = std::collections::VecDeque::from([self.rect.member_index(self.root) as u32]);
        while let Some(i) = queue.pop_front() {
            out.push(self.rect.member_coords(i as usize));
            queue.extend(self.children[i as usize].iter().copied());
        }
        out
    }

    /// The directed first-hop link the root uses in this tree (None for a
    /// single-node tree) — colored trees lead with distinct links.
    pub fn root_first_hop(&self, shape: TorusShape) -> Option<crate::coords::Dir> {
        let child = self.children[self.rect.member_index(self.root)].first()?;
        let cc = self.rect.member_coords(*child as usize);
        crate::coords::Dir::all()
            .into_iter()
            .find(|&d| shape.neighbor(self.root, d) == cc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spanning(shape: TorusShape, tree: &SpanningTree) {
        // Every node reaches the root through finitely many parents.
        for c in tree.rect.iter() {
            let mut cur = c;
            let mut steps = 0;
            while let Some(p) = tree.parent_of(cur) {
                // Every parent edge is a single torus hop.
                assert_eq!(crate::route::hop_distance(shape, cur, p), 1);
                cur = p;
                steps += 1;
                assert!(steps <= tree.num_nodes(), "cycle detected at {c}");
            }
            assert_eq!(cur, tree.root());
        }
        // BFS covers all members exactly once.
        let order = tree.bfs_order();
        assert_eq!(order.len(), tree.num_nodes());
    }

    #[test]
    fn dim_ordered_tree_spans_box() {
        let shape = TorusShape::new([4, 3, 2, 2, 2]);
        let rect = Rectangle::full(shape);
        let root = Coords([1, 1, 0, 0, 0]);
        let tree = SpanningTree::build(shape, rect, root, TreeKind::DimOrdered(ALL_DIMS));
        assert_spanning(shape, &tree);
        assert_eq!(tree.depth_of(root), 0);
    }

    #[test]
    fn dim_ordered_depth_is_manhattan_distance() {
        let shape = TorusShape::new([5, 5, 1, 1, 1]);
        let rect = Rectangle::full(shape);
        let root = Coords([2, 2, 0, 0, 0]);
        let tree = SpanningTree::build(shape, rect, root, TreeKind::DimOrdered(ALL_DIMS));
        for c in rect.iter() {
            let manhattan: u16 = (0..5)
                .map(|d| (c.0[d] as i32 - root.0[d] as i32).unsigned_abs() as u16)
                .sum();
            assert_eq!(tree.depth_of(c), manhattan, "at {c}");
        }
    }

    #[test]
    fn all_ten_colors_span_the_full_torus() {
        let shape = TorusShape::new([3, 3, 2, 2, 2]);
        let rect = Rectangle::full(shape);
        let root = Coords([0, 0, 0, 0, 0]);
        for color in 0..NUM_COLORS {
            let tree = SpanningTree::build(shape, rect, root, TreeKind::Colored(color));
            assert_spanning(shape, &tree);
        }
    }

    #[test]
    fn opposite_colors_use_opposite_directed_links() {
        // On a full-torus rectangle, every chain of a "+" color travels only
        // "+" directed links (and "−" colors only "−" links) along
        // dimensions with extent ≥ 3, so the ± color pair of a dimension
        // never contends for a directed link there — the disjointness the
        // 10-color aggregate bandwidth relies on.
        let shape = TorusShape::new([4, 4, 4, 4, 2]);
        let rect = Rectangle::full(shape);
        let root = Coords([0, 0, 0, 0, 0]);
        for color in 0..NUM_COLORS {
            let tree = SpanningTree::build(shape, rect, root, TreeKind::Colored(color));
            let expect_plus = color < 5;
            for c in rect.iter() {
                let Some(p) = tree.parent_of(c) else { continue };
                // The edge travels parent -> child; find its directed link.
                let dir = crate::coords::Dir::all()
                    .into_iter()
                    .find(|&d| shape.neighbor(p, d) == c)
                    .expect("parent edge is one hop");
                if shape.extent(dir.dim) >= 3 {
                    assert_eq!(
                        dir.plus, expect_plus,
                        "color {color} edge {p}->{c} travels {dir}"
                    );
                }
            }
        }
    }

    #[test]
    fn wrap_chains_have_depth_up_to_extent_minus_one() {
        let shape = TorusShape::new([6, 1, 1, 1, 1]);
        let rect = Rectangle::full(shape);
        let root = Coords([0; 5]);
        let plus = SpanningTree::build(shape, rect, root, TreeKind::Colored(0));
        // "+"-chain: node at coordinate k has depth k.
        for k in 0..6u16 {
            assert_eq!(plus.depth_of(Coords([k, 0, 0, 0, 0])), k);
        }
        let minus = SpanningTree::build(shape, rect, root, TreeKind::Colored(5));
        for k in 1..6u16 {
            assert_eq!(minus.depth_of(Coords([k, 0, 0, 0, 0])), 6 - k);
        }
    }

    #[test]
    fn sub_rectangle_tree_stays_inside() {
        let shape = TorusShape::new([8, 8, 1, 1, 1]);
        let rect = Rectangle::new(Coords([2, 3, 0, 0, 0]), Coords([5, 6, 0, 0, 0]));
        let root = Coords([3, 4, 0, 0, 0]);
        let tree = SpanningTree::build(shape, rect, root, TreeKind::DimOrdered(ALL_DIMS));
        assert_spanning(shape, &tree);
        for c in tree.bfs_order() {
            assert!(rect.contains(c));
        }
    }

    #[test]
    #[should_panic(expected = "outside rectangle")]
    fn root_outside_rect_panics() {
        let shape = TorusShape::new([4, 4, 1, 1, 1]);
        let rect = Rectangle::new(Coords([0, 0, 0, 0, 0]), Coords([1, 1, 0, 0, 0]));
        SpanningTree::build(shape, rect, Coords([3, 3, 0, 0, 0]), TreeKind::DimOrdered(ALL_DIMS));
    }

    #[test]
    fn max_depth_and_fanout_reported() {
        let shape = TorusShape::new([4, 4, 1, 1, 1]);
        let rect = Rectangle::full(shape);
        let tree =
            SpanningTree::build(shape, rect, Coords([0; 5]), TreeKind::DimOrdered(ALL_DIMS));
        assert!(tree.max_depth() >= 3);
        assert!(tree.max_fanout() >= 1);
    }
}
