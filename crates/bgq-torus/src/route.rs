//! Routing on the 5D torus.
//!
//! Two routing modes matter to PAMI (paper sections II.B and III.E):
//!
//! * **Deterministic (dimension-ordered)** routing delivers all packets of a
//!   (source, destination) pair over the same path, so packets arrive in
//!   injection order. Eager messages and rendezvous headers use it so that
//!   MPI matching sees sends in order.
//! * **Dynamic** routing lets packets take any minimal path; the data
//!   packets of a rendezvous transfer use it for bandwidth. Only its hop
//!   count and path diversity matter to the models here.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};

use crate::coords::{Coords, Dir, TorusShape, ALL_DIMS};

/// The deterministic dimension-ordered route from `src` to `dst`: the exact
/// sequence of directed hops, correcting A first, then B, … then E, each
/// dimension taking the shorter way around (ties to "+").
pub fn det_route(shape: TorusShape, src: Coords, dst: Coords) -> Vec<Dir> {
    let mut hops = Vec::new();
    for dim in ALL_DIMS {
        let delta = shape.min_delta(src, dst, dim);
        let dir = Dir { dim, plus: delta >= 0 };
        for _ in 0..delta.unsigned_abs() {
            hops.push(dir);
        }
    }
    hops
}

/// The first hop of the deterministic route from `src` to `dst`, and the
/// node it lands on — `None` when already at the destination. Hop-by-hop
/// forwarders (the fabric's combining overlay moves coalesced atomics one
/// hop per pump) use this instead of materializing the whole route.
pub fn next_hop(shape: TorusShape, src: Coords, dst: Coords) -> Option<(Dir, Coords)> {
    for dim in ALL_DIMS {
        let delta = shape.min_delta(src, dst, dim);
        if delta != 0 {
            let dir = Dir { dim, plus: delta >= 0 };
            return Some((dir, shape.neighbor(src, dir)));
        }
    }
    None
}

/// Dense class index of the first dimension-ordered hop from `src` toward
/// `dst`: `0` when the nodes coincide, else `1 + Dir::index()` of the first
/// hop. Traffic sharing a class leaves `src` on the same physical link, so
/// senders flushing several coalescing buckets at once (`pami::aggr`) order
/// the flush by class — frames that share the first link go out
/// back-to-back, the TRAM-style first-hop grouping.
pub fn first_hop_class(shape: TorusShape, src: Coords, dst: Coords) -> u8 {
    match next_hop(shape, src, dst) {
        None => 0,
        Some((dir, _)) => 1 + dir.index() as u8,
    }
}

/// Minimal hop count between two nodes.
pub fn hop_distance(shape: TorusShape, src: Coords, dst: Coords) -> u32 {
    ALL_DIMS
        .iter()
        .map(|&d| shape.min_delta(src, dst, d).unsigned_abs())
        .sum()
}

/// Walk a route from `src`, returning the node reached (sanity tool for the
/// router and for fabric tests).
pub fn walk(shape: TorusShape, src: Coords, route: &[Dir]) -> Coords {
    route.iter().fold(src, |c, &dir| shape.neighbor(c, dir))
}

/// Number of distinct minimal paths between two nodes (multinomial of the
/// per-dimension hop counts) — the path diversity dynamic routing can
/// exploit. Saturates at `u64::MAX`.
pub fn minimal_path_count(shape: TorusShape, src: Coords, dst: Coords) -> u64 {
    let deltas: Vec<u64> = ALL_DIMS
        .iter()
        .map(|&d| shape.min_delta(src, dst, d).unsigned_abs() as u64)
        .filter(|&d| d > 0)
        .collect();
    let total: u64 = deltas.iter().sum();
    // multinomial(total; d1, d2, ...) computed incrementally.
    let mut count: u64 = 1;
    let mut n = 0u64;
    for d in deltas {
        for k in 1..=d {
            n += 1;
            count = count.saturating_mul(n) / k;
        }
    }
    debug_assert!(total == n);
    count.max(1)
}

/// The ten neighbors of a node, one per directed link — Figure 5's message
/// rate benchmark spreads peers across all ten links, and Table 3 adds
/// neighbors one link at a time. Neighbors may coincide for extents ≤ 2;
/// the returned list preserves link order and may contain duplicates, which
/// callers dedupe if they need distinct nodes.
pub fn link_neighbors(shape: TorusShape, src: Coords) -> Vec<Coords> {
    Dir::all().iter().map(|&d| shape.neighbor(src, d)).collect()
}

/// Link-health table: one bit per directed link, marking torus links the
/// RAS layer has declared dead. BG/Q's network unit kept exactly this kind
/// of state — the link-level retry hardware escalated a persistently failing
/// link to a RAS event, and the torus routed around it until a service
/// action replaced the optical module.
///
/// Concurrency: readers ([`LinkHealth::is_up`], [`healthy_route`]) are
/// lock-free `Relaxed` loads on the hot path; [`LinkHealth::kill`] is rare
/// (a RAS event) and uses `fetch_or`. A cheap global `any_down` counter lets
/// the fault-free fast path skip the per-node mask entirely.
pub struct LinkHealth {
    shape: TorusShape,
    /// Per-node bitmask over the ten [`Dir::index`] values; a set bit means
    /// the outgoing link in that direction is dead.
    down: Vec<AtomicU16>,
    /// Number of directed links currently marked down (both directions of a
    /// killed physical link count). Zero ⇒ every route is healthy.
    down_count: AtomicUsize,
    /// Monotonic change counter: bumps on every kill *and* every revive, so
    /// cached routes invalidate even when the down count returns to a value
    /// it held before.
    change_epoch: AtomicUsize,
}

impl LinkHealth {
    /// All links up.
    pub fn new(shape: TorusShape) -> Self {
        let n = shape.num_nodes();
        LinkHealth {
            shape,
            down: (0..n).map(|_| AtomicU16::new(0)).collect(),
            down_count: AtomicUsize::new(0),
            change_epoch: AtomicUsize::new(0),
        }
    }

    /// The shape this table covers.
    pub fn shape(&self) -> TorusShape {
        self.shape
    }

    /// Fast check: is *any* link in the machine down? `false` means every
    /// deterministic route is valid and no per-hop checks are needed.
    pub fn any_down(&self) -> bool {
        self.down_count.load(Ordering::Relaxed) != 0
    }

    /// Monotonic health epoch: bumps every time a directed link goes down
    /// or comes back up. Route caches compare epochs to know when to
    /// recompute.
    pub fn epoch(&self) -> usize {
        self.change_epoch.load(Ordering::Relaxed)
    }

    /// Is the outgoing link of `node` in direction `dir` up?
    pub fn is_up(&self, node: Coords, dir: Dir) -> bool {
        let idx = self.shape.node_index(node);
        self.down[idx].load(Ordering::Relaxed) & (1 << dir.index()) == 0
    }

    /// Kill the physical link between `node` and its `dir` neighbor: both
    /// the outgoing link and the neighbor's reverse link go down. Returns
    /// `true` if this call newly killed the link (idempotent).
    pub fn kill(&self, node: Coords, dir: Dir) -> bool {
        let peer = self.shape.neighbor(node, dir);
        let a = self.mark(node, dir);
        let b = self.mark(peer, dir.reverse());
        a || b
    }

    /// Revive the physical link between `node` and its `dir` neighbor — the
    /// service action that replaces a failed module. Both directions come
    /// back up. Returns `true` if this call newly revived the link
    /// (idempotent).
    pub fn revive(&self, node: Coords, dir: Dir) -> bool {
        let peer = self.shape.neighbor(node, dir);
        let a = self.unmark(node, dir);
        let b = self.unmark(peer, dir.reverse());
        a || b
    }

    fn mark(&self, node: Coords, dir: Dir) -> bool {
        let idx = self.shape.node_index(node);
        let bit = 1u16 << dir.index();
        let prev = self.down[idx].fetch_or(bit, Ordering::Relaxed);
        if prev & bit == 0 {
            self.down_count.fetch_add(1, Ordering::Relaxed);
            self.change_epoch.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn unmark(&self, node: Coords, dir: Dir) -> bool {
        let idx = self.shape.node_index(node);
        let bit = 1u16 << dir.index();
        let prev = self.down[idx].fetch_and(!bit, Ordering::Relaxed);
        if prev & bit != 0 {
            self.down_count.fetch_sub(1, Ordering::Relaxed);
            self.change_epoch.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Every dead directed link, as `(node, dir)` pairs in node order.
    pub fn downed_links(&self) -> Vec<(Coords, Dir)> {
        let mut out = Vec::new();
        if !self.any_down() {
            return out;
        }
        for (idx, mask) in self.down.iter().enumerate() {
            let mask = mask.load(Ordering::Relaxed);
            if mask == 0 {
                continue;
            }
            let node = self.shape.coords_of(idx);
            for dir in Dir::all() {
                if mask & (1 << dir.index()) != 0 {
                    out.push((node, dir));
                }
            }
        }
        out
    }

    /// Does `route`, walked from `src`, cross only healthy links?
    pub fn route_is_healthy(&self, src: Coords, route: &[Dir]) -> bool {
        if !self.any_down() {
            return true;
        }
        let mut at = src;
        for &dir in route {
            if !self.is_up(at, dir) {
                return false;
            }
            at = self.shape.neighbor(at, dir);
        }
        true
    }
}

/// A route from `src` to `dst` that crosses only healthy links, or `None`
/// if the dead links disconnect the pair.
///
/// Fast path: with every link up (or the deterministic route untouched by
/// the failures) this is exactly [`det_route`] — reroutes must not perturb
/// fault-free paths, so MPI ordering on healthy node pairs is preserved.
/// Otherwise a breadth-first search over up links finds a shortest healthy
/// detour; among equal-length candidates the lowest [`Dir::index`] wins at
/// every node, so the reroute is deterministic too (rerouted traffic still
/// arrives in order).
pub fn healthy_route(
    shape: TorusShape,
    src: Coords,
    dst: Coords,
    health: &LinkHealth,
) -> Option<Vec<Dir>> {
    let det = det_route(shape, src, dst);
    if health.route_is_healthy(src, &det) {
        return Some(det);
    }
    if src == dst {
        return Some(Vec::new());
    }
    // BFS from src over healthy links. Predecessor array keyed by node
    // index stores the (prev node index, dir taken) pair.
    let n = shape.num_nodes();
    let mut prev: Vec<Option<(usize, Dir)>> = vec![None; n];
    let src_idx = shape.node_index(src);
    let dst_idx = shape.node_index(dst);
    let mut queue = VecDeque::new();
    queue.push_back(src_idx);
    // Mark src visited with a self-loop sentinel.
    prev[src_idx] = Some((src_idx, Dir::all()[0]));
    'bfs: while let Some(at_idx) = queue.pop_front() {
        let at = shape.coords_of(at_idx);
        for dir in Dir::all() {
            if !health.is_up(at, dir) {
                continue;
            }
            let next = shape.neighbor(at, dir);
            let next_idx = shape.node_index(next);
            if prev[next_idx].is_some() {
                continue;
            }
            prev[next_idx] = Some((at_idx, dir));
            if next_idx == dst_idx {
                break 'bfs;
            }
            queue.push_back(next_idx);
        }
    }
    prev[dst_idx]?;
    // Walk predecessors back from dst.
    let mut hops = Vec::new();
    let mut at = dst_idx;
    while at != src_idx {
        let (p, dir) = prev[at].expect("predecessor chain broken");
        hops.push(dir);
        at = p;
    }
    hops.reverse();
    debug_assert_eq!(walk(shape, src, &hops), dst);
    Some(hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_route_reaches_destination() {
        let shape = TorusShape::new([4, 3, 2, 5, 2]);
        let src = Coords([0, 0, 0, 0, 0]);
        let dst = Coords([3, 2, 1, 4, 1]);
        let route = det_route(shape, src, dst);
        assert_eq!(walk(shape, src, &route), dst);
        assert_eq!(route.len() as u32, hop_distance(shape, src, dst));
    }

    #[test]
    fn det_route_is_dimension_ordered() {
        let shape = TorusShape::new([4, 4, 4, 4, 2]);
        let route = det_route(shape, Coords([0; 5]), Coords([2, 3, 1, 0, 1]));
        // Dimension indices along the route must be non-decreasing.
        let idxs: Vec<usize> = route.iter().map(|d| d.dim.index()).collect();
        assert!(idxs.windows(2).all(|w| w[0] <= w[1]), "route {idxs:?}");
    }

    #[test]
    fn det_route_takes_short_way_around() {
        let shape = TorusShape::new([8, 1, 1, 1, 1]);
        let route = det_route(shape, Coords([0; 5]), Coords([7, 0, 0, 0, 0]));
        assert_eq!(route.len(), 1);
        assert!(!route[0].plus);
    }

    #[test]
    fn hop_distance_zero_for_self() {
        let shape = TorusShape::new([3, 3, 3, 3, 3]);
        let c = Coords([1, 2, 0, 1, 2]);
        assert_eq!(hop_distance(shape, c, c), 0);
        assert!(det_route(shape, c, c).is_empty());
    }

    #[test]
    fn first_hop_class_matches_route_head() {
        let shape = TorusShape::new([4, 3, 2, 5, 2]);
        let src = Coords([1, 0, 1, 2, 0]);
        for dst in shape.iter() {
            let class = first_hop_class(shape, src, dst);
            let route = det_route(shape, src, dst);
            match route.first() {
                None => assert_eq!(class, 0, "self maps to class 0"),
                Some(&dir) => assert_eq!(class, 1 + dir.index() as u8, "dst {dst:?}"),
            }
        }
        // Destinations sharing a first hop share a class; the two directions
        // of one dimension do not.
        let plus = first_hop_class(shape, Coords([0; 5]), Coords([1, 0, 0, 0, 0]));
        let plus_far = first_hop_class(shape, Coords([0; 5]), Coords([1, 2, 1, 0, 1]));
        let minus = first_hop_class(shape, Coords([0; 5]), Coords([3, 0, 0, 0, 0]));
        assert_eq!(plus, plus_far);
        assert_ne!(plus, minus);
    }

    #[test]
    fn minimal_path_count_multinomial() {
        let shape = TorusShape::new([8, 8, 1, 1, 1]);
        // 2 hops in A, 1 in B: 3!/2!1! = 3 minimal paths.
        assert_eq!(
            minimal_path_count(shape, Coords([0; 5]), Coords([2, 1, 0, 0, 0])),
            3
        );
        // Single dimension: exactly one minimal path.
        assert_eq!(
            minimal_path_count(shape, Coords([0; 5]), Coords([3, 0, 0, 0, 0])),
            1
        );
        // Self: one (empty) path.
        assert_eq!(minimal_path_count(shape, Coords([0; 5]), Coords([0; 5])), 1);
    }

    #[test]
    fn link_neighbors_has_ten_entries_distinct_on_big_torus() {
        let shape = TorusShape::new([4, 4, 4, 4, 4]);
        let n = link_neighbors(shape, Coords([1, 1, 1, 1, 1]));
        assert_eq!(n.len(), 10);
        let mut dedup = n.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "all ten link peers distinct on 4^5");
        for peer in n {
            assert_eq!(hop_distance(shape, Coords([1, 1, 1, 1, 1]), peer), 1);
        }
    }

    #[test]
    fn link_health_starts_all_up() {
        let shape = TorusShape::new([3, 3, 2, 2, 2]);
        let health = LinkHealth::new(shape);
        assert!(!health.any_down());
        assert!(health.downed_links().is_empty());
        for node in shape.iter() {
            for dir in Dir::all() {
                assert!(health.is_up(node, dir));
            }
        }
    }

    #[test]
    fn kill_marks_both_directions_idempotently() {
        let shape = TorusShape::new([4, 2, 2, 1, 1]);
        let health = LinkHealth::new(shape);
        let node = Coords([1, 0, 0, 0, 0]);
        let dir = Dir { dim: ALL_DIMS[0], plus: true };
        assert!(health.kill(node, dir));
        assert!(!health.kill(node, dir), "second kill is a no-op");
        assert!(health.any_down());
        assert!(!health.is_up(node, dir));
        let peer = shape.neighbor(node, dir);
        assert!(!health.is_up(peer, dir.reverse()));
        assert_eq!(health.downed_links().len(), 2);
    }

    #[test]
    fn healthy_route_matches_det_route_when_clean() {
        let shape = TorusShape::new([4, 3, 2, 2, 2]);
        let health = LinkHealth::new(shape);
        let src = Coords([0, 0, 0, 0, 0]);
        let dst = Coords([3, 2, 1, 1, 1]);
        assert_eq!(
            healthy_route(shape, src, dst, &health),
            Some(det_route(shape, src, dst))
        );
    }

    #[test]
    fn healthy_route_detours_around_dead_link() {
        let shape = TorusShape::new([4, 4, 1, 1, 1]);
        let health = LinkHealth::new(shape);
        let src = Coords([0; 5]);
        let dst = Coords([2, 0, 0, 0, 0]);
        // Kill the first hop of the deterministic route (A+ out of src).
        let det = det_route(shape, src, dst);
        health.kill(src, det[0]);
        let route = healthy_route(shape, src, dst, &health).expect("detour exists");
        assert_eq!(walk(shape, src, &route), dst);
        assert!(health.route_is_healthy(src, &route));
        assert_ne!(route, det);
        // Detour is a shortest healthy path: around the dead A+ link the
        // best option is A- the long way (2 hops) or B± sidestep (4 hops);
        // going A- twice on a ring of 4 reaches [2,...] in 2 hops.
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn healthy_route_is_deterministic() {
        let shape = TorusShape::new([3, 3, 3, 1, 1]);
        let health = LinkHealth::new(shape);
        let src = Coords([0; 5]);
        let dst = Coords([1, 1, 1, 0, 0]);
        health.kill(src, Dir { dim: ALL_DIMS[0], plus: true });
        let a = healthy_route(shape, src, dst, &health).unwrap();
        let b = healthy_route(shape, src, dst, &health).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn healthy_route_none_when_disconnected() {
        // A 2x1x1x1x1 "torus" has a single physical link (both wrap
        // directions land on the same neighbor); killing every outgoing
        // direction of src disconnects the pair.
        let shape = TorusShape::new([2, 1, 1, 1, 1]);
        let health = LinkHealth::new(shape);
        let src = Coords([0; 5]);
        let dst = Coords([1, 0, 0, 0, 0]);
        for dir in Dir::all() {
            health.kill(src, dir);
        }
        assert_eq!(healthy_route(shape, src, dst, &health), None);
    }

    #[test]
    fn healthy_route_self_is_empty_even_with_faults() {
        let shape = TorusShape::new([2, 2, 1, 1, 1]);
        let health = LinkHealth::new(shape);
        let c = Coords([1, 0, 0, 0, 0]);
        for dir in Dir::all() {
            health.kill(c, dir);
        }
        assert_eq!(healthy_route(shape, c, c, &health), Some(Vec::new()));
    }

    #[test]
    fn symmetric_distance() {
        let shape = TorusShape::new([5, 4, 3, 2, 2]);
        let a = Coords([4, 1, 2, 0, 1]);
        let b = Coords([0, 3, 0, 1, 0]);
        assert_eq!(hop_distance(shape, a, b), hop_distance(shape, b, a));
    }
}
