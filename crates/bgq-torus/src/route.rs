//! Routing on the 5D torus.
//!
//! Two routing modes matter to PAMI (paper sections II.B and III.E):
//!
//! * **Deterministic (dimension-ordered)** routing delivers all packets of a
//!   (source, destination) pair over the same path, so packets arrive in
//!   injection order. Eager messages and rendezvous headers use it so that
//!   MPI matching sees sends in order.
//! * **Dynamic** routing lets packets take any minimal path; the data
//!   packets of a rendezvous transfer use it for bandwidth. Only its hop
//!   count and path diversity matter to the models here.

use crate::coords::{Coords, Dir, TorusShape, ALL_DIMS};

/// The deterministic dimension-ordered route from `src` to `dst`: the exact
/// sequence of directed hops, correcting A first, then B, … then E, each
/// dimension taking the shorter way around (ties to "+").
pub fn det_route(shape: TorusShape, src: Coords, dst: Coords) -> Vec<Dir> {
    let mut hops = Vec::new();
    for dim in ALL_DIMS {
        let delta = shape.min_delta(src, dst, dim);
        let dir = Dir { dim, plus: delta >= 0 };
        for _ in 0..delta.unsigned_abs() {
            hops.push(dir);
        }
    }
    hops
}

/// Minimal hop count between two nodes.
pub fn hop_distance(shape: TorusShape, src: Coords, dst: Coords) -> u32 {
    ALL_DIMS
        .iter()
        .map(|&d| shape.min_delta(src, dst, d).unsigned_abs())
        .sum()
}

/// Walk a route from `src`, returning the node reached (sanity tool for the
/// router and for fabric tests).
pub fn walk(shape: TorusShape, src: Coords, route: &[Dir]) -> Coords {
    route.iter().fold(src, |c, &dir| shape.neighbor(c, dir))
}

/// Number of distinct minimal paths between two nodes (multinomial of the
/// per-dimension hop counts) — the path diversity dynamic routing can
/// exploit. Saturates at `u64::MAX`.
pub fn minimal_path_count(shape: TorusShape, src: Coords, dst: Coords) -> u64 {
    let deltas: Vec<u64> = ALL_DIMS
        .iter()
        .map(|&d| shape.min_delta(src, dst, d).unsigned_abs() as u64)
        .filter(|&d| d > 0)
        .collect();
    let total: u64 = deltas.iter().sum();
    // multinomial(total; d1, d2, ...) computed incrementally.
    let mut count: u64 = 1;
    let mut n = 0u64;
    for d in deltas {
        for k in 1..=d {
            n += 1;
            count = count.saturating_mul(n) / k;
        }
    }
    debug_assert!(total == n);
    count.max(1)
}

/// The ten neighbors of a node, one per directed link — Figure 5's message
/// rate benchmark spreads peers across all ten links, and Table 3 adds
/// neighbors one link at a time. Neighbors may coincide for extents ≤ 2;
/// the returned list preserves link order and may contain duplicates, which
/// callers dedupe if they need distinct nodes.
pub fn link_neighbors(shape: TorusShape, src: Coords) -> Vec<Coords> {
    Dir::all().iter().map(|&d| shape.neighbor(src, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_route_reaches_destination() {
        let shape = TorusShape::new([4, 3, 2, 5, 2]);
        let src = Coords([0, 0, 0, 0, 0]);
        let dst = Coords([3, 2, 1, 4, 1]);
        let route = det_route(shape, src, dst);
        assert_eq!(walk(shape, src, &route), dst);
        assert_eq!(route.len() as u32, hop_distance(shape, src, dst));
    }

    #[test]
    fn det_route_is_dimension_ordered() {
        let shape = TorusShape::new([4, 4, 4, 4, 2]);
        let route = det_route(shape, Coords([0; 5]), Coords([2, 3, 1, 0, 1]));
        // Dimension indices along the route must be non-decreasing.
        let idxs: Vec<usize> = route.iter().map(|d| d.dim.index()).collect();
        assert!(idxs.windows(2).all(|w| w[0] <= w[1]), "route {idxs:?}");
    }

    #[test]
    fn det_route_takes_short_way_around() {
        let shape = TorusShape::new([8, 1, 1, 1, 1]);
        let route = det_route(shape, Coords([0; 5]), Coords([7, 0, 0, 0, 0]));
        assert_eq!(route.len(), 1);
        assert!(!route[0].plus);
    }

    #[test]
    fn hop_distance_zero_for_self() {
        let shape = TorusShape::new([3, 3, 3, 3, 3]);
        let c = Coords([1, 2, 0, 1, 2]);
        assert_eq!(hop_distance(shape, c, c), 0);
        assert!(det_route(shape, c, c).is_empty());
    }

    #[test]
    fn minimal_path_count_multinomial() {
        let shape = TorusShape::new([8, 8, 1, 1, 1]);
        // 2 hops in A, 1 in B: 3!/2!1! = 3 minimal paths.
        assert_eq!(
            minimal_path_count(shape, Coords([0; 5]), Coords([2, 1, 0, 0, 0])),
            3
        );
        // Single dimension: exactly one minimal path.
        assert_eq!(
            minimal_path_count(shape, Coords([0; 5]), Coords([3, 0, 0, 0, 0])),
            1
        );
        // Self: one (empty) path.
        assert_eq!(minimal_path_count(shape, Coords([0; 5]), Coords([0; 5])), 1);
    }

    #[test]
    fn link_neighbors_has_ten_entries_distinct_on_big_torus() {
        let shape = TorusShape::new([4, 4, 4, 4, 4]);
        let n = link_neighbors(shape, Coords([1, 1, 1, 1, 1]));
        assert_eq!(n.len(), 10);
        let mut dedup = n.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "all ten link peers distinct on 4^5");
        for peer in n {
            assert_eq!(hop_distance(shape, Coords([1, 1, 1, 1, 1]), peer), 1);
        }
    }

    #[test]
    fn symmetric_distance() {
        let shape = TorusShape::new([5, 4, 3, 2, 2]);
        let a = Coords([4, 1, 2, 0, 1]);
        let b = Coords([0, 3, 0, 1, 0]);
        assert_eq!(hop_distance(shape, a, b), hop_distance(shape, b, a));
    }
}
