//! Dimensions, directed links, coordinates, and torus shapes.

use std::fmt;

/// Number of torus dimensions on BG/Q.
pub const NUM_DIMS: usize = 5;

/// Number of directed links out of a node.
pub const NUM_DIRS: usize = 2 * NUM_DIMS;

/// A torus dimension. BG/Q labels them A through E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    A,
    B,
    C,
    D,
    E,
}

/// All dimensions in canonical (A..E) order.
pub const ALL_DIMS: [Dim; NUM_DIMS] = [Dim::A, Dim::B, Dim::C, Dim::D, Dim::E];

impl Dim {
    /// Index of this dimension (A=0 … E=4).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Dimension from an index.
    ///
    /// # Panics
    /// If `i >= 5`.
    pub fn from_index(i: usize) -> Dim {
        ALL_DIMS[i]
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", ["A", "B", "C", "D", "E"][self.index()])
    }
}

/// A directed link: a dimension plus a "+" or "−" direction. BG/Q notation
/// writes these A+, A−, …, E+, E−.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dir {
    /// The dimension the link travels along.
    pub dim: Dim,
    /// True for the "+" direction.
    pub plus: bool,
}

impl Dir {
    /// All ten directed links in (A+, A−, B+, …, E−) order.
    pub fn all() -> [Dir; NUM_DIRS] {
        let mut out = [Dir { dim: Dim::A, plus: true }; NUM_DIRS];
        for (i, d) in ALL_DIMS.iter().enumerate() {
            out[2 * i] = Dir { dim: *d, plus: true };
            out[2 * i + 1] = Dir { dim: *d, plus: false };
        }
        out
    }

    /// Stable index 0..10 of this directed link.
    pub fn index(self) -> usize {
        2 * self.dim.index() + usize::from(!self.plus)
    }

    /// The opposite direction on the same dimension.
    pub fn reverse(self) -> Dir {
        Dir { dim: self.dim, plus: !self.plus }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dim, if self.plus { "+" } else { "-" })
    }
}

/// Coordinates of a node in the 5D torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Coords(pub [u16; NUM_DIMS]);

impl Coords {
    /// Coordinate along `dim`.
    #[inline]
    pub fn get(self, dim: Dim) -> u16 {
        self.0[dim.index()]
    }

    /// Replace the coordinate along `dim`.
    #[inline]
    pub fn with(mut self, dim: Dim, value: u16) -> Coords {
        self.0[dim.index()] = value;
        self
    }
}

impl fmt::Display for Coords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{},{},{},{},{}>",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4]
        )
    }
}

/// The shape (extent per dimension) of a torus or torus partition.
///
/// The full BG/Q design point is 16×16×16×32×2 = 262144 nodes (96-rack
/// systems use a subset); test systems are much smaller. Shapes with extent
/// 1 in some dimensions degenerate gracefully (a 2048-node partition might
/// be 8×8×8×4×... any rectangular factorization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusShape(pub [u16; NUM_DIMS]);

impl TorusShape {
    /// A shape from per-dimension extents.
    ///
    /// # Panics
    /// If any extent is zero.
    pub fn new(extents: [u16; NUM_DIMS]) -> Self {
        assert!(
            extents.iter().all(|&e| e > 0),
            "torus extents must be positive, got {extents:?}"
        );
        TorusShape(extents)
    }

    /// Factor `nodes` into a compact 5D shape (used by tests and the timing
    /// simulator when only a node count is given). Greedily splits powers of
    /// small primes across dimensions, largest extents first.
    pub fn for_nodes(nodes: usize) -> Self {
        assert!(nodes > 0, "cannot shape a zero-node torus");
        let mut remaining = nodes;
        let mut extents = [1u16; NUM_DIMS];
        let mut dim = 0;
        // Peel factors, round-robin over dimensions for near-cubic shapes.
        let mut factor = 2usize;
        while remaining > 1 {
            if remaining.is_multiple_of(factor) {
                remaining /= factor;
                extents[dim] = extents[dim].saturating_mul(factor as u16);
                dim = (dim + 1) % NUM_DIMS;
            } else {
                factor += 1;
                if factor * factor > remaining {
                    // remaining is prime
                    extents[dim] = extents[dim].saturating_mul(remaining as u16);
                    break;
                }
            }
        }
        let shape = TorusShape(extents);
        debug_assert_eq!(shape.num_nodes(), nodes);
        shape
    }

    /// Extent along `dim`.
    #[inline]
    pub fn extent(self, dim: Dim) -> u16 {
        self.0[dim.index()]
    }

    /// Total node count.
    pub fn num_nodes(self) -> usize {
        self.0.iter().map(|&e| e as usize).product()
    }

    /// Whether `c` lies inside the shape.
    pub fn contains(self, c: Coords) -> bool {
        c.0.iter().zip(self.0.iter()).all(|(&x, &e)| x < e)
    }

    /// Row-major (A slowest, E fastest) node index of `c`.
    ///
    /// # Panics
    /// If `c` is outside the shape.
    pub fn node_index(self, c: Coords) -> usize {
        assert!(self.contains(c), "coords {c} outside shape {:?}", self.0);
        let mut idx = 0usize;
        for d in 0..NUM_DIMS {
            idx = idx * self.0[d] as usize + c.0[d] as usize;
        }
        idx
    }

    /// Inverse of [`TorusShape::node_index`].
    ///
    /// # Panics
    /// If `index >= num_nodes()`.
    pub fn coords_of(self, index: usize) -> Coords {
        assert!(index < self.num_nodes(), "node index {index} out of range");
        let mut rem = index;
        let mut c = [0u16; NUM_DIMS];
        for d in (0..NUM_DIMS).rev() {
            let e = self.0[d] as usize;
            c[d] = (rem % e) as u16;
            rem /= e;
        }
        Coords(c)
    }

    /// The neighbor of `c` across directed link `dir`, with torus wraparound.
    pub fn neighbor(self, c: Coords, dir: Dir) -> Coords {
        let e = self.extent(dir.dim);
        let x = c.get(dir.dim);
        let nx = if dir.plus {
            (x + 1) % e
        } else {
            (x + e - 1) % e
        };
        c.with(dir.dim, nx)
    }

    /// Signed minimal hop displacement from `a` to `b` along `dim`
    /// (positive means the "+" direction is shortest; ties choose "+",
    /// matching the deterministic router).
    pub fn min_delta(self, a: Coords, b: Coords, dim: Dim) -> i32 {
        let e = self.extent(dim) as i32;
        let raw = (b.get(dim) as i32 - a.get(dim) as i32).rem_euclid(e);
        if raw * 2 <= e {
            raw
        } else {
            raw - e
        }
    }

    /// Iterate over every coordinate in the shape, in node-index order.
    pub fn iter(self) -> impl Iterator<Item = Coords> {
        (0..self.num_nodes()).map(move |i| self.coords_of(i))
    }

    /// The largest minimal hop count between any two nodes (network
    /// diameter) — what bounds worst-case point-to-point latency.
    pub fn diameter(self) -> u32 {
        self.0.iter().map(|&e| (e / 2) as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_round_trip_indices() {
        for (i, d) in ALL_DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), *d);
        }
    }

    #[test]
    fn dirs_enumerate_ten_links() {
        let dirs = Dir::all();
        assert_eq!(dirs.len(), NUM_DIRS);
        for (i, d) in dirs.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(d.reverse().reverse(), *d);
        }
    }

    #[test]
    fn node_index_round_trips() {
        let shape = TorusShape::new([2, 3, 4, 5, 2]);
        for i in 0..shape.num_nodes() {
            assert_eq!(shape.node_index(shape.coords_of(i)), i);
        }
    }

    #[test]
    fn neighbor_wraps_around() {
        let shape = TorusShape::new([4, 1, 1, 1, 1]);
        let origin = Coords([0, 0, 0, 0, 0]);
        let minus = shape.neighbor(origin, Dir { dim: Dim::A, plus: false });
        assert_eq!(minus.get(Dim::A), 3);
        let plus = shape.neighbor(Coords([3, 0, 0, 0, 0]), Dir { dim: Dim::A, plus: true });
        assert_eq!(plus.get(Dim::A), 0);
    }

    #[test]
    fn neighbor_extent_one_is_self() {
        let shape = TorusShape::new([1, 1, 1, 1, 1]);
        let c = Coords([0; 5]);
        for dir in Dir::all() {
            assert_eq!(shape.neighbor(c, dir), c);
        }
    }

    #[test]
    fn min_delta_prefers_short_way_around() {
        let shape = TorusShape::new([8, 1, 1, 1, 1]);
        let a = Coords([0, 0, 0, 0, 0]);
        let b = Coords([6, 0, 0, 0, 0]);
        assert_eq!(shape.min_delta(a, b, Dim::A), -2);
        let c = Coords([3, 0, 0, 0, 0]);
        assert_eq!(shape.min_delta(a, c, Dim::A), 3);
        // Exactly half: ties go "+".
        let d = Coords([4, 0, 0, 0, 0]);
        assert_eq!(shape.min_delta(a, d, Dim::A), 4);
    }

    #[test]
    fn for_nodes_factorizations_preserve_count() {
        for n in [1usize, 2, 32, 48, 512, 2048, 96 * 1024] {
            assert_eq!(TorusShape::for_nodes(n).num_nodes(), n, "n={n}");
        }
    }

    #[test]
    fn diameter_of_2048_node_machine_is_small() {
        let shape = TorusShape::for_nodes(2048);
        // 5D keeps the farthest node close; the paper's point about 5
        // dimensions reducing maximum hops.
        assert!(shape.diameter() <= 16, "diameter {}", shape.diameter());
    }

    #[test]
    #[should_panic(expected = "outside shape")]
    fn node_index_out_of_shape_panics() {
        let shape = TorusShape::new([2, 2, 2, 2, 2]);
        shape.node_index(Coords([2, 0, 0, 0, 0]));
    }

    #[test]
    fn iter_visits_every_node_once() {
        let shape = TorusShape::new([2, 2, 3, 1, 2]);
        let all: Vec<Coords> = shape.iter().collect();
        assert_eq!(all.len(), shape.num_nodes());
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
