//! Umbrella crate for the PAMI/BG-Q reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can depend on a single package. See the individual
//! crates for the real documentation:
//!
//! * [`pami`] — the Parallel Active Messaging Interface itself.
//! * [`pami_mpi`] — the MPI-flavoured layer built on PAMI ("pamid").
//! * [`bgq_hw`] — L2 atomics, wakeup unit, memory regions, CNK services.
//! * [`bgq_torus`] — the 5D torus geometry and packet fabric.
//! * [`bgq_mu`] — the messaging unit (descriptors, FIFOs, engines).
//! * [`bgq_collnet`] — classroutes, the collective network, the GI barrier.
//! * [`bgq_netsim`] — the discrete-event timing simulator for machine-scale
//!   experiments.

pub use bgq_collnet;
pub use bgq_hw;
pub use bgq_mu;
pub use bgq_netsim;
pub use bgq_torus;
pub use pami;
pub use pami_mpi;
