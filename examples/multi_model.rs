//! Multiple programming models in one job — the PAMI *client* story.
//!
//! The paper's clients let "simultaneous co-existence of multiple
//! programming model runtimes" share a node: here an MPI-style runtime
//! exchanges tagged messages while a PGAS-style runtime (think UPC/ARMCI)
//! does one-sided puts and gets into registered windows — over two
//! independent clients with separate FIFOs and dispatch spaces.
//!
//! ```text
//! cargo run --example multi_model
//! ```

use pami_repro::pami::{Client, Counter, Machine, MemRegion, PayloadSource};
use pami_repro::pami_mpi::{Mpi, MpiConfig};

const TASKS: usize = 4;
const WORDS: usize = 128;

fn main() {
    let machine = Machine::with_nodes(TASKS).build();
    machine.run(|env| {
        let me = env.task;
        // Runtime 1: the MPI layer (client "MPI" inside).
        let mpi = Mpi::init(&env.machine, me, MpiConfig::default());
        // Runtime 2: a PGAS-style runtime with its own client.
        let pgas = Client::create(&env.machine, me, "pgas", 1);
        // Everyone exposes a window of WORDS u64s plus an arrival counter.
        let window_mem = MemRegion::zeroed(WORDS * 8);
        let arrivals = Counter::new();
        arrivals.add_expected(8); // expect one 8-byte put from the left peer
        let my_key = env.machine.create_window(window_mem.clone(), Some(arrivals.clone()));
        env.machine.task_barrier();

        let world = mpi.world().clone();

        // Exchange window keys over MPI — the two models compose: one
        // bootstraps the other (the mixed MPI+UPC usage the paper cites).
        let key_buf = MemRegion::zeroed(8);
        key_buf.write_i64(0, my_key.0 as i64);
        let right = (world.rank() + 1) % TASKS;
        let left = (world.rank() + TASKS - 1) % TASKS;
        let recv_buf = MemRegion::zeroed(8);
        let r = mpi.irecv(&recv_buf, 0, 8, right as i32, 0, &world);
        mpi.send(&key_buf, 0, 8, left, 0, &world);
        mpi.wait(r);
        let right_key = pami_repro::pami::MemKey(recv_buf.read_i64(0) as u64);

        // PGAS phase: put my rank (as a u64) into slot `me` of the right
        // neighbor's window, then get it back to verify.
        let ctx = pgas.context(0);
        let payload = MemRegion::zeroed(8);
        payload.write_i64(0, 1000 + me as i64);
        let put_done = Counter::new();
        put_done.add_expected(8);
        ctx.put(pami_repro::pami::PutArgs {
            dest_task: right as u32,
            window: pami_repro::pami::WindowRef::at(right_key, (me as usize % WORDS) * 8),
            payload: PayloadSource::Region { region: payload, offset: 0, len: 8 },
            local_done: Some(put_done.clone()),
        })
        .unwrap();
        ctx.advance_until(|| put_done.is_complete());

        // Wait for the left neighbor's put to land in *our* window.
        ctx.advance_until(|| arrivals.is_complete());
        let got = window_mem.read_i64((left % WORDS) * 8);
        assert_eq!(got, 1000 + left as i64, "left neighbor's one-sided put landed");

        // Read the value back from the right neighbor with a one-sided get.
        let fetch = MemRegion::zeroed(8);
        let got_back = Counter::new();
        got_back.add_expected(8);
        ctx.get(pami_repro::pami::GetArgs {
            dest_task: right as u32,
            window: pami_repro::pami::WindowRef::at(right_key, (me as usize % WORDS) * 8),
            dst: pami_repro::pami::MemSlot::base(fetch.clone()),
            len: 8,
            done: Some(got_back.clone()),
        })
        .unwrap();
        while !got_back.is_complete() {
            ctx.advance();
            std::thread::yield_now();
        }
        assert_eq!(fetch.read_i64(0), 1000 + me as i64, "round-tripped through the window");

        mpi.barrier(&world);
        if world.rank() == 0 {
            println!("multi_model OK: MPI and PGAS clients coexisted on one partition");
        }
    });
}
