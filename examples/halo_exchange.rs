//! Halo exchange: the classic stencil communication pattern, over
//! **persistent channels** — the fixed-descriptor tier of the protocol
//! ladder.
//!
//! Eight ranks form a 1-D periodic chain; each owns an interior of CELLS
//! doubles plus two ghost cells, runs Jacobi-style relaxation steps, and
//! exchanges boundary values with both neighbors every step. A halo
//! boundary is the persistent channel's ideal workload: the peers, the
//! size, and the buffers never change, so each rank pre-negotiates one
//! channel per neighbor **once** and every subsequent step is two
//! fixed-descriptor injections plus two counter waits — no matching, no
//! protocol decision, no tag bookkeeping. (The MPI spelling of this loop —
//! irecv/isend/waitall with per-step tags — pays the matching engine on
//! every single boundary byte.)
//!
//! ```text
//! cargo run --example halo_exchange
//! ```

use pami_repro::pami::{Client, Endpoint, Machine};

const RANKS: usize = 8;
const CELLS: usize = 64; // interior cells per rank
const STEPS: usize = 20;

fn main() {
    let machine = Machine::with_nodes(RANKS).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "halo", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let me = env.task as usize;
        let left = (me + RANKS - 1) % RANKS;
        let right = (me + 1) % RANKS;

        // One persistent channel per neighbor, negotiated once. Channels
        // pair in per-peer creation order, so every rank creating its
        // left-then-right channels lines each one up with the matching
        // channel on the other side of that edge.
        let mut chan_l = ctx.channel(Endpoint::of_task(left as u32), 8).unwrap();
        let mut chan_r = ctx.channel(Endpoint::of_task(right as u32), 8).unwrap();

        // Layout: [ghost_left][interior…][ghost_right].
        // Initialize: rank r's interior is all r+1.
        let mut field = vec![0.0f64; CELLS + 2];
        field[1..=CELLS].fill((me + 1) as f64);

        let mut ghost = [0u8; 8];
        for _step in 0..STEPS {
            // Steady state: post both boundaries, wait for both ghosts.
            // The payloads land in the channels' pre-negotiated windows —
            // the receive side never dispatches, matches, or allocates.
            chan_r.post(&field[CELLS].to_le_bytes()).unwrap();
            chan_l.post(&field[1].to_le_bytes()).unwrap();
            chan_l.wait(&mut ghost).unwrap();
            field[0] = f64::from_le_bytes(ghost);
            chan_r.wait(&mut ghost).unwrap();
            field[CELLS + 1] = f64::from_le_bytes(ghost);
            // Relax: new = (left + self + right) / 3 over the interior.
            let snapshot = field.clone();
            for i in 1..=CELLS {
                field[i] = (snapshot[i - 1] + snapshot[i] + snapshot[i + 1]) / 3.0;
            }
        }

        // Diffusion smooths the field: every rank's interior range shrinks
        // toward the neighborhood values, and the extremes contract.
        let mean: f64 = (1..=RANKS).map(|r| r as f64).sum::<f64>() / RANKS as f64;
        let interior = &field[1..=CELLS];
        let my_avg: f64 = interior.iter().sum::<f64>() / CELLS as f64;
        let my_min = interior.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let my_max = interior.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        println!("rank {me}: average {my_avg:.3} range [{my_min:.3}, {my_max:.3}] (global mean {mean:.3})");
        // The maximum principle: values stay inside the initial extremes,
        // and the extreme ranks have moved strictly inward.
        assert!(my_min >= 1.0 - 1e-9 && my_max <= RANKS as f64 + 1e-9);
        if me == 0 {
            assert!(my_avg > 1.0 + 1e-6, "lowest rank pulled up by neighbors");
        }
        if me == RANKS - 1 {
            assert!(my_avg < RANKS as f64 - 1e-6, "highest rank pulled down");
        }
        // (Neighbors may run a step ahead; the channels' double buffering
        // absorbs the skew — nothing is matched, nothing is lost.)
        env.machine.task_barrier();
        if me == 0 {
            println!("halo_exchange OK ({STEPS} steps, {RANKS} ranks, persistent channels)");
        }
    });
}
