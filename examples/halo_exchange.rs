//! Halo exchange: the classic stencil communication pattern, over the MPI
//! layer — nonblocking sends/receives plus the two-phase waitall the paper
//! optimizes.
//!
//! Eight ranks form a 1-D periodic chain; each owns an interior of CELLS
//! doubles plus two ghost cells, runs Jacobi-style relaxation steps, and
//! exchanges boundary values with both neighbors every step.
//!
//! ```text
//! cargo run --example halo_exchange
//! ```

use pami_repro::pami::Machine;
use pami_repro::pami_mpi::{MemRegion, Mpi, MpiConfig};

const RANKS: usize = 8;
const CELLS: usize = 64; // interior cells per rank
const STEPS: usize = 20;

fn main() {
    let machine = Machine::with_nodes(RANKS).build();
    machine.run(|env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        env.machine.task_barrier();
        let world = mpi.world().clone();
        let me = world.rank();
        let left = (me + RANKS - 1) % RANKS;
        let right = (me + 1) % RANKS;

        // Layout: [ghost_left][interior…][ghost_right], 8 bytes per cell.
        let field = MemRegion::zeroed((CELLS + 2) * 8);
        let write = |i: usize, v: f64| field.write_f64(i * 8, v);
        let read = |i: usize| field.read_f64(i * 8);
        // Initialize: rank r's interior is all r+1.
        for i in 1..=CELLS {
            write(i, (me + 1) as f64);
        }

        for step in 0..STEPS {
            let tag_lr = (2 * step) as i32; // leftward-traveling values
            let tag_rl = (2 * step + 1) as i32;
            // Post ghost receives, then send boundaries (pre-posting keeps
            // everything on the matched fast path).
            let reqs = [
                mpi.irecv(&field, 0, 8, left as i32, tag_lr, &world),
                mpi.irecv(&field, (CELLS + 1) * 8, 8, right as i32, tag_rl, &world),
                mpi.isend(&field, CELLS * 8, 8, right, tag_lr, &world),
                mpi.isend(&field, 8, 8, left, tag_rl, &world),
            ];
            mpi.waitall(&reqs);
            // Relax: new = (left + self + right) / 3 over the interior.
            let snapshot: Vec<f64> = (0..CELLS + 2).map(read).collect();
            for i in 1..=CELLS {
                write(i, (snapshot[i - 1] + snapshot[i] + snapshot[i + 1]) / 3.0);
            }
        }

        // Diffusion smooths the field: every rank's interior range shrinks
        // toward the neighborhood values, and the extremes contract.
        let mean: f64 = (1..=RANKS).map(|r| r as f64).sum::<f64>() / RANKS as f64;
        let my_avg: f64 = (1..=CELLS).map(read).sum::<f64>() / CELLS as f64;
        let my_min = (1..=CELLS).map(read).fold(f64::INFINITY, f64::min);
        let my_max = (1..=CELLS).map(read).fold(f64::NEG_INFINITY, f64::max);
        println!("rank {me}: average {my_avg:.3} range [{my_min:.3}, {my_max:.3}] (global mean {mean:.3})");
        // The maximum principle: values stay inside the initial extremes,
        // and the extreme ranks have moved strictly inward.
        assert!(my_min >= 1.0 - 1e-9 && my_max <= RANKS as f64 + 1e-9);
        if me == 0 {
            assert!(my_avg > 1.0 + 1e-6, "lowest rank pulled up by neighbors");
        }
        if me == RANKS - 1 {
            assert!(my_avg < RANKS as f64 - 1e-6, "highest rank pulled down");
        }
        // (Neighbors run ahead, so some messages may arrive unexpected —
        // the matching engine stages them; nothing is lost.)
        mpi.barrier(&world);
        if me == 0 {
            println!("halo_exchange OK ({STEPS} steps, {RANKS} ranks)");
        }
    });
}
