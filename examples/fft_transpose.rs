//! The paper's FFT motivation: "the 5D torus boosts the bisection
//! bandwidth of the machine accelerating the performance of applications
//! that have all-to-all communication such as FFT."
//!
//! This example runs the communication core of a distributed 2-D FFT — the
//! global matrix transpose via `MPI_Alltoall` — and verifies it, then asks
//! the timing model what the 5D torus buys over lower-dimensional tori of
//! the same size at machine scale.
//!
//! ```text
//! cargo run --example fft_transpose
//! ```

use pami_repro::bgq_netsim::{p2p, MachineParams};
use pami_repro::bgq_torus::TorusShape;
use pami_repro::pami::Machine;
use pami_repro::pami_mpi::{MemRegion, Mpi, MpiConfig};

const RANKS: usize = 4;
const N: usize = 32; // N×N matrix of f64, rows distributed

fn main() {
    // Functional part: distributed transpose with alltoall.
    let machine = Machine::with_nodes(RANKS).build();
    machine.run(|env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        env.machine.task_barrier();
        let world = mpi.world().clone();
        let me = world.rank();
        let rows = N / RANKS;

        // My rows of the matrix: a[i][j] = i * N + j (global indices).
        let local = MemRegion::zeroed(rows * N * 8);
        for i in 0..rows {
            for j in 0..N {
                let gi = me * rows + i;
                local.write_f64((i * N + j) * 8, (gi * N + j) as f64);
            }
        }

        // Pack: block for rank r = my rows × r's columns.
        let blk = rows * rows * 8;
        let send = MemRegion::zeroed(RANKS * blk);
        for r in 0..RANKS {
            for i in 0..rows {
                for j in 0..rows {
                    let v = local.read_f64((i * N + r * rows + j) * 8);
                    send.write_f64(r * blk + (i * rows + j) * 8, v);
                }
            }
        }

        // The global exchange.
        let recv = MemRegion::zeroed(RANKS * blk);
        mpi.alltoall((&send, 0), (&recv, 0), blk, &world);

        // Unpack transposed: my row i (global column me*rows+i).
        for r in 0..RANKS {
            for i in 0..rows {
                for j in 0..rows {
                    let v = recv.read_f64(r * blk + (j * rows + i) * 8);
                    // v = a[r*rows + j][me*rows + i]; transposed position:
                    // row (me*rows + i), column (r*rows + j).
                    let want = ((r * rows + j) * N + (me * rows + i)) as f64;
                    assert_eq!(v, want, "transpose mismatch at r={r} i={i} j={j}");
                }
            }
        }
        mpi.barrier(&world);
        if me == 0 {
            println!("functional alltoall transpose of a {N}x{N} matrix over {RANKS} ranks: OK");
        }
    });

    // Modeled part: why five dimensions matter for this pattern.
    let params = MachineParams::default();
    println!("\nmodeled per-node alltoall bandwidth on 2048 nodes (torus dimensionality):");
    for (label, shape) in [
        ("2D 64x32", TorusShape::new([64, 32, 1, 1, 1])),
        ("3D 16x16x8", TorusShape::new([16, 16, 8, 1, 1])),
        ("4D 8x8x8x4", TorusShape::new([8, 8, 8, 4, 1])),
        ("5D 8x4x4x4x4", TorusShape::new([8, 4, 4, 4, 4])),
    ] {
        let bw = p2p::alltoall_node_bandwidth(&params, shape);
        println!("  {label:<14} {:>8.2} MB/s per node (avg hops {:.2})", bw / 1e6, p2p::average_hops(shape));
    }
    println!("fft_transpose OK");
}
