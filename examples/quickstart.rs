//! Quickstart: bring up a simulated BG/Q partition, create a PAMI client,
//! and exchange active messages between two tasks.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami_repro::pami::{Client, Machine, Recv, SendArgs};
use pami_repro::pami::{Endpoint, PayloadSource};

fn main() {
    // A 2-node partition, one process per node, inline MU engines.
    let machine = Machine::with_nodes(2).build();
    println!(
        "machine: {} nodes, shape {:?}, {} tasks",
        machine.num_nodes(),
        machine.shape().0,
        machine.num_tasks()
    );

    let received = Arc::new(AtomicU64::new(0));
    let received2 = Arc::clone(&received);

    machine.run(move |env| {
        // Every task creates its side of the "app" client.
        let client = Client::create(&env.machine, env.task, "app", 1);
        let ctx = client.context(0);

        // Task 1 registers an active-message handler on dispatch id 1.
        if env.task == 1 {
            let received = Arc::clone(&received2);
            ctx.set_dispatch(
                1,
                Arc::new(move |_ctx, msg, payload| {
                    println!(
                        "task 1 <- task {}: metadata={:?} payload={:?}",
                        msg.src.task,
                        std::str::from_utf8(&msg.metadata).unwrap(),
                        std::str::from_utf8(payload).unwrap()
                    );
                    received.fetch_add(1, Ordering::SeqCst);
                    Recv::Done
                }),
            );
        }
        // Make sure all endpoints exist before anyone sends.
        env.machine.task_barrier();

        if env.task == 0 {
            // The latency path: payload copied and injected immediately.
            ctx.send_immediate(Endpoint::of_task(1), 1, b"hi", b"ping")
                .expect("fits in one packet");
            // The general path: eager memory-FIFO send.
            ctx.send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: 1,
                metadata: b"again".to_vec(),
                payload: PayloadSource::Immediate(bytes::Bytes::from_static(b"pong-me")),
                local_done: None,
            }).unwrap();
            // Drive our own context so the injection FIFO drains; both
            // sides advance until the receiver has dispatched both
            // messages.
            ctx.advance_until(|| received2.load(Ordering::SeqCst) == 2);
        } else {
            // Advance until both messages have been dispatched.
            ctx.advance_until(|| received2.load(Ordering::SeqCst) == 2);
        }
    });

    println!("delivered {} messages", received.load(Ordering::SeqCst));
    assert_eq!(received.load(Ordering::SeqCst), 2);

    // The UPC-style telemetry registry saw the whole exchange; one
    // snapshot covers every layer (`mu.*` here — the report is empty when
    // built with `--no-default-features`).
    let snap = machine.telemetry().snapshot();
    println!(
        "telemetry: {} MU fifo messages, {} packets injected",
        snap.counter("mu.fifo_messages"),
        snap.counter("mu.packets_injected"),
    );
    println!("quickstart OK");
}
