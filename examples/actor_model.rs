//! A Charm++-flavoured actor runtime in ~150 lines — the "other
//! programming models" PAMI exists to host.
//!
//! Chares (actors) live on tasks, addressed by a global chare id; method
//! invocations are PAMI active messages; commthreads drive delivery in the
//! background, so actors run without any application-level polling. The
//! demo builds a ring of chares that pass a token around, incrementing it,
//! until it has made `LAPS` laps.
//!
//! ```text
//! cargo run --example actor_model
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami_repro::pami::{Client, CommThreadPool, Context, Endpoint, Machine, Recv};

const TASKS: usize = 4;
const CHARES_PER_TASK: usize = 3;
const LAPS: u64 = 5;
const DISPATCH_INVOKE: u16 = 1;

/// A chare: receives a token value, bumps it, forwards to the next chare.
struct RingChare {
    id: u64,
    next: u64, // global id of the successor
    invocations: AtomicU64,
}

fn chare_task(id: u64) -> u32 {
    (id as usize / CHARES_PER_TASK) as u32
}

fn main() {
    // Combining on: the hot-key phase below funnels every task's fetch-add
    // through the in-network combining overlay.
    let machine = Machine::with_nodes(TASKS).combining(true).build();
    let total_chares = (TASKS * CHARES_PER_TASK) as u64;
    let done = Arc::new(AtomicU64::new(0));
    let done2 = Arc::clone(&done);
    let key_cell: Arc<std::sync::OnceLock<pami_repro::pami::MemKey>> =
        Arc::new(std::sync::OnceLock::new());
    let key_cell2 = Arc::clone(&key_cell);
    let tickets = Arc::new(AtomicU64::new(0));
    let tickets2 = Arc::clone(&tickets);

    machine.run(move |env| {
        // The actor runtime gets its own client, independent of anything
        // else (MPI could run alongside on this machine).
        let client = Client::create(&env.machine, env.task, "charm", 1);
        let ctx = Arc::clone(client.context(0));

        // This task's chares.
        let chares: Arc<Vec<RingChare>> = Arc::new(
            (0..CHARES_PER_TASK as u64)
                .map(|i| {
                    let id = env.task as u64 * CHARES_PER_TASK as u64 + i;
                    RingChare {
                        id,
                        next: (id + 1) % total_chares,
                        invocations: AtomicU64::new(0),
                    }
                })
                .collect(),
        );

        // Method dispatch: metadata = [target chare id u64][token u64].
        let done = Arc::clone(&done2);
        let my_chares = Arc::clone(&chares);
        ctx.set_dispatch(
            DISPATCH_INVOKE,
            Arc::new(move |ctx: &Context, msg, _payload| {
                let target = u64::from_le_bytes(msg.metadata[..8].try_into().unwrap());
                let token = u64::from_le_bytes(msg.metadata[8..16].try_into().unwrap());
                let chare = my_chares
                    .iter()
                    .find(|c| c.id == target)
                    .expect("invocation routed to the right task");
                chare.invocations.fetch_add(1, Ordering::Relaxed);
                if token >= LAPS * total_chares {
                    done.store(token, Ordering::Release);
                } else {
                    // Forward to the successor — sending from inside a
                    // handler is the message-driven style.
                    send_invoke(ctx, chare.next, token + 1);
                }
                Recv::Done
            }),
        );
        env.machine.task_barrier();

        // Background progress: one commthread per task drives the ring with
        // no polling in "application" code.
        let pool = CommThreadPool::spawn(vec![Arc::clone(&ctx)], 1);

        if env.task == 0 {
            // Seed the token at chare 0.
            send_invoke(&ctx, 0, 1);
        }
        // Wait for termination (the chares run on commthreads meanwhile).
        let start = std::time::Instant::now();
        while done2.load(Ordering::Acquire) == 0 {
            assert!(start.elapsed().as_secs() < 30, "ring stalled");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let my_invocations: u64 =
            chares.iter().map(|c| c.invocations.load(Ordering::Relaxed)).sum();
        println!(
            "task {}: {} chares handled {} invocations",
            env.task, CHARES_PER_TASK, my_invocations
        );
        assert!(my_invocations >= LAPS, "every task's chares ran");
        pool.shutdown();

        // Second act: a hot-key shared counter. Every task fetch-adds the
        // same word in task 0's window — the seqno/ticket pattern actor
        // runtimes use for global ids — and the priors must come back
        // unique (a permutation of 0..TASKS), the linearizability a plain
        // put could never give.
        let counter_mem = pami_repro::pami::MemRegion::zeroed(8);
        if env.task == 0 {
            let key = env.machine.create_window(counter_mem.clone(), None);
            key_cell2.set(key).unwrap();
        }
        env.machine.task_barrier();
        let key = *key_cell2.get().expect("task 0 published the window key");
        let prior_slot = pami_repro::pami::MemRegion::zeroed(8);
        let got = pami_repro::pami::Counter::new();
        got.add_expected(1);
        ctx.rmw(pami_repro::pami::RmwArgs {
            dest_task: 0,
            window: pami_repro::pami::WindowRef::base(key),
            op: pami_repro::pami::RmwOp::FetchAdd,
            operand: 1,
            compare: 0,
            result: Some(pami_repro::pami::MemSlot::base(prior_slot.clone())),
            done: Some(got.clone()),
        })
        .unwrap();
        ctx.advance_until(|| got.is_complete());
        let my_ticket = prior_slot.read_i64(0) as u64;
        assert!(my_ticket < TASKS as u64, "tickets are dense");
        tickets2.fetch_or(1 << my_ticket, Ordering::SeqCst);
        env.machine.task_barrier();
        if env.task == 0 {
            assert_eq!(counter_mem.read_i64(0) as u64, TASKS as u64, "every rmw applied once");
            println!("hot-key counter reached {TASKS}; each task drew a unique ticket");
        }
        env.machine.task_barrier();
    });

    let token = done.load(Ordering::Acquire);
    assert_eq!(token, LAPS * total_chares);
    // Every ticket 0..TASKS was drawn exactly once — the combined
    // fetch-adds linearized.
    assert_eq!(tickets.load(Ordering::SeqCst), (1u64 << TASKS) - 1);
    println!("actor_model OK: token made {LAPS} laps over {total_chares} chares (final value {token})");
}

/// Invoke the chare `target` with `token` (an active message to its home
/// task).
fn send_invoke(ctx: &Context, target: u64, token: u64) {
    let mut metadata = Vec::with_capacity(16);
    metadata.extend_from_slice(&target.to_le_bytes());
    metadata.extend_from_slice(&token.to_le_bytes());
    ctx.send(pami_repro::pami::SendArgs {
        dest: Endpoint::of_task(chare_task(target)),
        dispatch: DISPATCH_INVOKE,
        metadata,
        payload: pami_repro::pami::PayloadSource::Immediate(bytes::Bytes::new()),
        local_done: None,
    })
    .unwrap();
}
