//! Hybrid-programming demo: multiple processes per node using the
//! shared-address collectives, classroute rotation via MPIX
//! optimize/deoptimize, and commthread-driven progress.
//!
//! Four nodes × four processes reduce a distributed dot product with
//! `MPI_Allreduce` over the collective network (master injects, peers read
//! the master's buffer through the global VA — Figures 3/4), then compare
//! the hardware path against the software binomial fallback.
//!
//! ```text
//! cargo run --example hybrid_allreduce
//! ```

use pami_repro::bgq_collnet::ops::elems;
use pami_repro::pami::coll::Algorithm;
use pami_repro::pami::Machine;
use pami_repro::pami_mpi::{CollOp, DataType, LibFlavor, MemRegion, Mpi, MpiConfig, ThreadLevel};

const NODES: usize = 4;
const PPN: usize = 4;
const N: usize = 1024; // local vector length

fn main() {
    let machine = Machine::with_nodes(NODES).ppn(PPN).build();
    machine.run(|env| {
        // MPI_THREAD_MULTIPLE auto-enables communication threads, the
        // configuration the paper recommends for hybrid codes.
        let mpi = Mpi::init(
            &env.machine,
            env.task,
            MpiConfig {
                flavor: LibFlavor::ThreadOptimized,
                thread_level: ThreadLevel::Multiple,
                contexts: 2,
                commthreads: None,
            },
        );
        env.machine.task_barrier();
        assert!(mpi.has_commthreads(), "THREAD_MULTIPLE enables commthreads");
        let world = mpi.world().clone();
        let me = world.rank();

        // Give COMM_WORLD a classroute (MPIX_Comm_optimize).
        world.optimize().expect("world is a rectangle");

        // Local work: a slice of x·y.
        let x: Vec<f64> = (0..N).map(|i| ((me * N + i) % 17) as f64 / 4.0).collect();
        let y: Vec<f64> = (0..N).map(|i| ((me * N + i) % 11) as f64 / 8.0).collect();
        let local_dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

        let src = MemRegion::from_vec(elems::from_f64(&[local_dot]));
        let hw = MemRegion::zeroed(8);
        let sw = MemRegion::zeroed(8);

        // Hardware path (collective network + shared-address intra-node).
        mpi.allreduce_with(Algorithm::HwCollNet, (&src, 0), (&hw, 0), 1, CollOp::Sum, DataType::Float64, &world);
        // Software binomial fallback over PAMI point-to-point.
        mpi.allreduce_with(Algorithm::SwBinomial, (&src, 0), (&sw, 0), 1, CollOp::Sum, DataType::Float64, &world);
        // Streaming chain pipeline (SHArP-style per-hop partial reduction),
        // invoked by registry name.
        let st = MemRegion::zeroed(8);
        mpi.allreduce_named(
            pami_repro::pami::coll::names::STREAM_ALLREDUCE,
            (&src, 0), (&st, 0), 1, CollOp::Sum, DataType::Float64, &world,
        );

        let hw_val = hw.read_f64(0);
        let sw_val = sw.read_f64(0);
        let st_val = st.read_f64(0);
        assert!((hw_val - sw_val).abs() < 1e-9, "hw and binomial agree");
        assert!((hw_val - st_val).abs() < 1e-9, "streaming agrees with both");

        // Rotate the classroute to another communicator (scarcity demo).
        mpi.barrier(&world);
        if me == 0 {
            world.deoptimize();
            println!("deoptimized COMM_WORLD; classroute released for reuse");
        }
        mpi.barrier(&world);
        // Collectives still work — auto-selection now lands on the
        // streaming chain (cost 90), the cheapest entry without a route.
        let again = MemRegion::zeroed(8);
        mpi.allreduce((&src, 0), (&again, 0), 1, CollOp::Sum, DataType::Float64, &world);
        assert!((again.read_f64(0) - hw_val).abs() < 1e-9);

        if me == 0 {
            println!(
                "global dot product = {hw_val:.4} over {} ranks (hw, binomial and streaming agree)",
                world.size()
            );
            println!("hybrid_allreduce OK");
        }
        mpi.barrier(&world);
    });
}
