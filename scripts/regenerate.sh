#!/usr/bin/env bash
# Regenerate every artifact EXPERIMENTS.md records:
#   test_output.txt   — full workspace test run
#   bench_output.txt  — full Criterion benchmark run
#   repro_output.txt  — every paper table/figure (measured + modeled)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test --workspace 2>&1 | tee test_output.txt
cargo build --release -p pami-bench
./target/release/repro all | tee repro_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt
