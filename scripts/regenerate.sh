#!/usr/bin/env bash
# Regenerate every artifact EXPERIMENTS.md records:
#   test_output.txt     — full workspace test run
#   bench_output.txt    — full Criterion benchmark run
#   repro_output.txt    — every paper table/figure (measured + modeled)
#   BENCH_msgrate.json  — MU fast-path message-rate / copy-count record
#                         (+ protocol-policy A/B, handoff percentiles,
#                          telemetry.json / telemetry_trace.json)
#   BENCH_coll.json     — per-phase collective p50s vs the CI baseline
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test --workspace 2>&1 | tee test_output.txt
cargo build --release -p bench
./target/release/repro all | tee repro_output.txt
./target/release/msgrate
./target/release/collgate --baseline ci/BENCH_coll_baseline.json
cargo bench --workspace 2>&1 | tee bench_output.txt
