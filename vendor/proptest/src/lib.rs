//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` headers),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`/`prop_oneof!`,
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], `any::<T>()`
//! for primitive integers, integer and float range strategies, tuple
//! strategies up to arity 6, `collection::vec`, and `option::weighted`.
//!
//! Differences from real proptest: generation only (no shrinking), and a
//! deterministic per-test RNG seed so failures reproduce exactly.

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values of type `Value`. Unlike real proptest there
    /// is no shrink tree — `generate` just produces a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<V, S: Strategy<Value = V> + ?Sized> Strategy for &S {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)` adaptor.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives — the engine behind
    /// `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Coerce a concrete strategy to a boxed trait object (used by
    /// `prop_oneof!` so heterogeneous arms unify on their `Value`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    // ------------------------------------------------------ range strategies

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            (self.start as f64 + unit * (self.end - self.start) as f64) as f32
        }
    }

    // ------------------------------------------------------ tuple strategies

    macro_rules! tuple_strategy {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A a)
        (A a, B b)
        (A a, B b, C c)
        (A a, B b, C c, D d)
        (A a, B b, C c, D d, E e)
        (A a, B b, C c, D d, E e, F f)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Full-range generation for primitive types, reachable via `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for a primitive type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Some(inner)` with probability `prob`.
    pub struct Weighted<S> {
        prob: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.prob {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `proptest::option::weighted(prob, strategy)`.
    pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
        Weighted { prob, inner }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;

    /// Deterministic SplitMix64 generator; one instance per property test.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — retry with a fresh input.
        Reject(String),
        /// `prop_assert*` failed — the property is false.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure, mirroring real proptest's constructor.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Construct a rejection, mirroring real proptest's constructor.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Drive `cases` successful executions of `test`, retrying rejected
    /// inputs (up to a generous cap) and panicking on the first failure.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        // Stable per-test seed: failures reproduce deterministically.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng::new(seed);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = config.cases as u64 * 64 + 1024;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {name}: too many inputs rejected by prop_assume! \
                             ({rejected} rejections for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name}: property failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    // `#[macro_export]` macros live at the crate root; re-export for glob use.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

// ------------------------------------------------------------------ macros

/// Uniform choice among strategy arms (weights are not supported by this
/// stand-in; the workspace only uses unweighted arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Assert a boolean condition inside a property, failing the case (not the
/// process) so the runner can report the generated input count.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions compare equal with `==`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert two expressions compare unequal with `!=`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discard the current case and try another input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(a in 0u32..10, b in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse_args! {
                config = ($config);
                name = $name;
                pats = ();
                strats = ();
                body = $body;
                cur = ();
                rest = ($($args)*);
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Token-muncher splitting `a in strat1, b in strat2, ...` into pattern and
/// strategy lists. Strategy expressions may contain commas only inside
/// bracketed groups (true for all ordinary expressions).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse_args {
    // Begin an argument: grab its name and the `in` keyword.
    (config = $cfg:tt; name = $name:ident; pats = ($($p:pat_param,)*); strats = ($($s:expr,)*);
     body = $body:block; cur = (); rest = ($arg:ident in $($rest:tt)*);) => {
        $crate::__proptest_parse_args! {
            config = $cfg; name = $name; pats = ($($p,)* $arg,); strats = ($($s,)*);
            body = $body; cur = (@strat); rest = ($($rest)*);
        }
    };
    // End of the current strategy at a top-level comma.
    (config = $cfg:tt; name = $name:ident; pats = $pats:tt; strats = ($($s:expr,)*);
     body = $body:block; cur = (@strat $($acc:tt)+); rest = (, $($rest:tt)*);) => {
        $crate::__proptest_parse_args! {
            config = $cfg; name = $name; pats = $pats; strats = ($($s,)* ($($acc)+),);
            body = $body; cur = (); rest = ($($rest)*);
        }
    };
    // Accumulate one token of the current strategy expression.
    (config = $cfg:tt; name = $name:ident; pats = $pats:tt; strats = $strats:tt;
     body = $body:block; cur = (@strat $($acc:tt)*); rest = ($t:tt $($rest:tt)*);) => {
        $crate::__proptest_parse_args! {
            config = $cfg; name = $name; pats = $pats; strats = $strats;
            body = $body; cur = (@strat $($acc)* $t); rest = ($($rest)*);
        }
    };
    // Input exhausted mid-strategy: flush the final strategy.
    (config = $cfg:tt; name = $name:ident; pats = $pats:tt; strats = ($($s:expr,)*);
     body = $body:block; cur = (@strat $($acc:tt)+); rest = ();) => {
        $crate::__proptest_parse_args! {
            config = $cfg; name = $name; pats = $pats; strats = ($($s,)* ($($acc)+),);
            body = $body; cur = (); rest = ();
        }
    };
    // All arguments parsed: emit the runner invocation.
    (config = ($cfg:expr); name = $name:ident; pats = ($($p:pat_param,)+); strats = ($($s:expr,)+);
     body = $body:block; cur = (); rest = ();) => {
        #[allow(unused_parens)]
        {
            let __config = $cfg;
            let __strategy = ($($s,)+);
            $crate::test_runner::run(
                &__config,
                stringify!($name),
                __strategy,
                |($($p,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (3u32..11).generate(&mut rng);
            assert!((3..11).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_option_sizes() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<i64>(), 1..16).generate(&mut rng);
            assert!((1..16).contains(&v.len()));
            let exact = crate::collection::vec(any::<i64>(), 4).generate(&mut rng);
            assert_eq!(exact.len(), 4);
            let _ = crate::option::weighted(0.6, 0u8..255).generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_single_arg(x in 0u64..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_multi_arg(
            op in prop_oneof![Just(1u8), Just(2u8)],
            v in crate::collection::vec(any::<i64>(), 1..8),
            f in -1e3f64..1e3,
        ) {
            prop_assert!(op == 1 || op == 2);
            prop_assert!(!v.is_empty());
            prop_assume!(f != 0.5);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn macro_prop_map(pair in (0u16..4, 0u16..4).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }
}
