//! Minimal offline stand-in for the `parking_lot` crate, built on
//! `std::sync`. Only the API surface this workspace uses is provided:
//! [`Mutex`] (`new`/`lock`/`try_lock`/`into_inner`), [`RwLock`]
//! (`read`/`write`), and [`Condvar`] (`wait`/`wait_for`/`notify_all`/
//! `notify_one`). Poisoning is absorbed — like the real parking_lot, a
//! panic while holding a guard does not poison the lock for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) => false,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
            Err(std::sync::TryLockError::WouldBlock) => true,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// -------------------------------------------------------------- Condvar

/// Result of a timed wait; mirrors parking_lot's `WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Mirrors parking_lot: takes `&mut MutexGuard`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the std guard out to satisfy the std condvar
        // signature, then put the re-acquired guard back.
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                timed_out = r.timed_out();
                g
            }
            Err(p) => {
                let (g, r) = p.into_inner();
                timed_out = r.timed_out();
                g
            }
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Swap the std guard inside our wrapper through a closure that consumes and
/// returns a std guard (required by `std::sync::Condvar::wait`'s by-value
/// signature). Uses a transient `ManuallyDrop`-free approach via Option.
fn replace_guard<'a, T>(
    wrapper: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    use std::ptr;
    // SAFETY: we read the guard out, hand it to `f`, and write the returned
    // guard back before any unwinding can observe the hole. If `f` panics the
    // guard it owned is dropped (unlocking), and we must not drop the stale
    // copy in `wrapper` — so we forget the original via write-without-drop
    // semantics: the read copy is moved into `f`, and on panic we abort the
    // process to avoid a double-unlock.
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let old = ptr::read(&wrapper.guard);
        let bomb = AbortOnDrop;
        let new = f(old);
        std::mem::forget(bomb);
        ptr::write(&mut wrapper.guard, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
