//! Minimal offline stand-in for the `crossbeam` facade crate. Only
//! `crossbeam::utils::CachePadded` is provided — the single item this
//! workspace consumes.

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between adjacent values. 128-byte alignment matches
    /// crossbeam's choice on modern x86_64 (adjacent-line prefetcher) and is
    /// a safe over-alignment elsewhere.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn padded_is_aligned_and_transparent() {
            let p = CachePadded::new(7u64);
            assert_eq!(*p, 7);
            assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
            assert_eq!(p.into_inner(), 7);
        }
    }
}
