//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], the group
//! configuration chain (`warm_up_time`, `sample_size`, `measurement_time`,
//! `throughput`), [`Bencher::iter`] and [`Bencher::iter_custom`],
//! [`Throughput`], and [`black_box`].
//!
//! Passing `--test` on the command line (as `cargo bench -- --test` does)
//! runs every benchmark exactly once as a smoke test, matching real
//! criterion's behavior for CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group; reported alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("\nbenchmark group: {name}");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name,
            test_mode,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let mut b = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                format!(
                    "  ({:.3} Melem/s)",
                    n as f64 / b.ns_per_iter * 1e9 / 1e6
                )
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                format!(
                    "  ({:.3} MiB/s)",
                    n as f64 / b.ns_per_iter * 1e9 / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        if self.test_mode {
            println!("  {}/{id}: smoke ok", self.name);
        } else {
            println!(
                "  {}/{id}: {:.1} ns/iter over {} iters{rate}",
                self.name, b.ns_per_iter, b.iters
            );
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Measures one benchmark routine.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called in batches until the measurement budget is
    /// spent. In `--test` mode the routine runs exactly once.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up & batch calibration: grow the batch until it runs ≥ ~1ms.
        let mut batch = 1u64;
        let warm_end = Instant::now() + self.warm_up;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt < Duration::from_millis(1) && batch < (1 << 24) {
                batch *= 2;
            }
            if Instant::now() >= warm_end {
                break;
            }
        }
        // Measurement: fixed-size batches until the time budget is spent.
        let samples = self.sample_size.max(1) as u64;
        let budget = self.measurement;
        let start = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut done = 0u64;
        while done < samples && start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
            done += 1;
        }
        self.iters = iters.max(1);
        self.ns_per_iter = total.as_nanos() as f64 / self.iters as f64;
    }

    /// Time a routine that runs `n` iterations itself and reports how long
    /// they took — for benchmarks whose per-iteration setup must be excluded.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        if self.test_mode {
            black_box(routine(1));
            self.iters = 1;
            return;
        }
        // Calibrate n so one call takes a meaningful fraction of the budget.
        let mut n = 1u64;
        loop {
            let dt = routine(n);
            if dt >= Duration::from_millis(5) || n >= (1 << 22) {
                break;
            }
            n *= 4;
        }
        let samples = self.sample_size.max(1) as u64;
        let budget = self.measurement;
        let start = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut done = 0u64;
        while done < samples && start.elapsed() < budget {
            total += routine(n);
            iters += n;
            done += 1;
        }
        self.iters = iters.max(1);
        self.ns_per_iter = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.sample_size(2);
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_function("custom", |b| {
            b.iter_custom(|n| {
                let t = Instant::now();
                for i in 0..n {
                    black_box(i);
                }
                t.elapsed()
            })
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
        let mut c = Criterion { test_mode: false };
        sample_bench(&mut c);
    }
}
