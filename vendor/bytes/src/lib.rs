//! Minimal offline stand-in for the `bytes` crate: a cheaply-cloneable,
//! sliceable, immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the tiny subset of the [`BufMut`] trait this
//! workspace uses (`put_u32_le`, `put_u64_le`, `put_slice`, `put_u8`).
//!
//! `Bytes` is backed by an `Arc<[u8]>` plus a start/end window, so `clone`
//! and `slice` are O(1) and never copy payload — the property the zero-copy
//! fast path relies on.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Static(&[])
    }
}

impl Bytes {
    /// Create a new empty `Bytes`.
    pub const fn new() -> Self {
        Self {
            data: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Create from a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: Repr::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copy `data` into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.data {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// O(1) sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Self {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Repr::Shared(Arc::from(v.into_boxed_slice())),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let end = b.len();
        Self {
            data: Repr::Shared(Arc::from(b)),
            start: 0,
            end,
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte builder; `freeze` converts into an immutable [`Bytes`]
/// without copying.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// The subset of `bytes::BufMut` this workspace needs.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(0xdeadbeef);
        m.put_slice(b"hi");
        let b = m.freeze();
        assert_eq!(b.len(), 6);
        assert_eq!(&b[4..], b"hi");
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 0xdeadbeef);
    }

    #[test]
    fn static_and_eq() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, b"abc"[..]);
    }
}
